"""RPR007 — async-safety and lock discipline in the live/runtime layers.

The live mode (PR 7) runs a real asyncio proxy and origin; the runtime
layer mixes a fork-based worker pool with thread locks.  Three bug
classes there are invisible to per-file syntax checks but provable from
the project call graph (:mod:`repro.lint.callgraph`):

1. **Blocking calls on the event loop.**  ``time.sleep``, synchronous
   ``socket``/``subprocess``/``os.system`` calls, and plain ``open()``
   reachable — through any chain of sync helpers — from an ``async
   def`` defined in the scoped packages.  The diagnostic lands on the
   blocking call site and carries a *because chain*: the call path that
   proves reachability from the event loop.

2. **Unlocked shared-state transactions.**  For every class whose
   method is handed to the event loop (``asyncio.start_server``,
   ``create_task``, ``ensure_future``, ``gather``), the checker walks
   everything reachable from those entry points and tracks, per path,
   mutations of ``self.*`` state.  Two mutations separated by an
   ``await`` — or a single read-modify-write (``self.x += await f()``)
   straddling one — outside a region dominated by a lock is a race:
   another invocation of the same callback can interleave at the
   suspension point.  Code dominated by ``async with self._lock:`` (or
   a sync ``with lock:``) is exempt, *including* methods only ever
   called from inside such a region (the shipped proxy's design).

3. **Lock-ordering hazards.**  Acquiring a second lock while one is
   held (``async with a: ... async with b:``), and ``await`` while
   holding a *synchronous* ``with lock:`` — the event loop suspends
   with a thread lock held, stalling every other thread that wants it.

All three rules are deliberately under-approximate: an unresolved call
contributes no edge, an unrecognized lock expression protects nothing,
and only what the graph *proves* gets flagged (no findings on dynamic
dispatch guesses).  Entry points the checker cannot see (callbacks
registered through wrappers it does not model) are simply not analyzed
— documented in docs/DEVELOPING.md under "call-graph imprecision".
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, replace
from typing import Iterable, Iterator, Optional, Union

from repro.lint.diagnostics import Because, Diagnostic
from repro.lint.project import ModuleInfo, Project
from repro.lint.registry import Checker, register
from repro.lint.symbols import FunctionNode, _dotted_parts

#: Packages whose async code this checker analyzes (roots + classes).
SCOPED_PACKAGES = ("repro.live", "repro.runtime")

#: Functions that hand a callback to the event loop; an async method
#: passed to one of these becomes a concurrency entry point.
_SPAWN_NAMES = frozenset(
    {"start_server", "create_task", "ensure_future", "gather"}
)

#: Constructors whose result stored on ``self`` marks a lock attribute.
_LOCK_FACTORIES = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}
)

#: Method names that mutate their receiver — calling one on a ``self``
#: attribute counts as touching shared state.
_MUTATING_METHODS = frozenset(
    {
        "append", "add", "remove", "pop", "popitem", "clear", "update",
        "extend", "insert", "setdefault", "discard",
        "store", "invalidate", "drop", "charge", "push",
    }
)


def in_scope(module_name: str) -> bool:
    """True when ``module_name`` falls under a scoped package."""
    return any(
        module_name == pkg or module_name.startswith(pkg + ".")
        for pkg in SCOPED_PACKAGES
    )


def _blocking_reason(call: ast.Call) -> Optional[str]:
    """Why this call blocks the event loop, or None if it does not."""
    if isinstance(call.func, ast.Name) and call.func.id == "open":
        return "open() performs synchronous file I/O"
    parts = _dotted_parts(call.func)
    if not parts:
        return None
    dotted = ".".join(parts)
    head = parts[0]
    if dotted == "time.sleep":
        return "time.sleep() suspends the whole thread, not just this task"
    if head == "subprocess":
        return f"{dotted}() runs a subprocess synchronously"
    if dotted in ("os.system", "os.popen", "os.wait", "os.waitpid"):
        return f"{dotted}() blocks until the child process finishes"
    if head == "socket" and len(parts) > 1:
        return f"{dotted}() does synchronous socket work"
    if head == "requests" or (head == "urllib" and "request" in parts):
        return f"{dotted}() performs a synchronous HTTP request"
    return None


def _iter_no_defs(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested function bodies."""
    stack: list[ast.AST] = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            stack.append(child)


def _contains_await(node: ast.AST) -> bool:
    return any(isinstance(n, ast.Await) for n in _iter_no_defs(node))


def _self_attr_root(expr: ast.expr) -> Optional[str]:
    """The first attribute in a ``self.X...`` chain, unwrapping
    subscripts (``self.X[k]``, ``self.X.Y``, ...), else None."""
    node = expr
    attr: Optional[str] = None
    while True:
        if isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Attribute):
            attr = node.attr
            node = node.value
        elif isinstance(node, ast.Name):
            return attr if node.id == "self" and attr else None
        else:
            return None


def _is_lockish(expr: ast.expr, lock_attrs: frozenset[str]) -> bool:
    """Heuristic: the expression names a lock (known attr or *lock*)."""
    attr = _self_attr_root(expr)
    if attr is not None and attr in lock_attrs:
        return True
    name: Optional[str] = None
    if isinstance(expr, ast.Name):
        name = expr.id
    elif isinstance(expr, ast.Attribute):
        name = expr.attr
    return name is not None and "lock" in name.lower()


_SIMPLE_STMTS = (
    ast.Expr, ast.Assign, ast.AugAssign, ast.AnnAssign,
    ast.Assert, ast.Delete, ast.Pass, ast.Global, ast.Nonlocal,
    ast.Import, ast.ImportFrom,
)


@dataclass(frozen=True)
class _TxnState:
    """Per-path transaction tracking for rule 2.

    ``touch`` is the (line, attr) of the transaction's first
    shared-state mutation; ``await_line`` the first suspension point
    after it; ``terminated`` marks a path that returned/raised.
    """

    touch: Optional[tuple[int, str]] = None
    await_line: Optional[int] = None
    terminated: bool = False

    def rank(self) -> int:
        if self.terminated:
            return -1
        if self.touch and self.await_line:
            return 2
        if self.touch:
            return 1
        return 0


def _merge(states: list[_TxnState]) -> _TxnState:
    """Join branch states, preferring the most race-advanced live path."""
    live = [s for s in states if not s.terminated]
    if not live:
        return _TxnState(terminated=True)
    return max(live, key=_TxnState.rank)


class _ClassModel:
    """Everything rule 2 needs to know about one class."""

    def __init__(
        self,
        module: ModuleInfo,
        qualname: str,
        methods: dict[str, FunctionNode],
    ) -> None:
        self.module = module
        self.qualname = qualname
        self.methods = methods
        self.lock_attrs = self._find_lock_attrs()
        self.entry_points = self._find_entry_points()
        # witness[m] = (attr, line, via) proving m mutates shared state
        # on some unprotected path; ``via`` names the method holding the
        # actual store when the evidence is transitive.
        self.witness: dict[str, tuple[str, int, str]] = {}
        self._build_touch_witnesses()

    # -- model construction --------------------------------------------------

    def _find_lock_attrs(self) -> frozenset[str]:
        attrs: set[str] = set()
        for node in self.methods.values():
            for sub in _iter_no_defs(node):
                if not isinstance(sub, ast.Assign):
                    continue
                value = sub.value
                if not (
                    isinstance(value, ast.Call)
                    and (parts := _dotted_parts(value.func))
                    and parts[-1] in _LOCK_FACTORIES
                ):
                    continue
                for target in sub.targets:
                    attr = _self_attr_root(target)
                    if attr:
                        attrs.add(attr)
        return frozenset(attrs)

    def _find_entry_points(self) -> list[str]:
        entries: list[str] = []
        for node in self.methods.values():
            for sub in _iter_no_defs(node):
                if not isinstance(sub, ast.Call):
                    continue
                parts = _dotted_parts(sub.func)
                if not parts or parts[-1] not in _SPAWN_NAMES:
                    continue
                candidates = list(sub.args)
                candidates += [kw.value for kw in sub.keywords]
                for arg in candidates:
                    if isinstance(arg, ast.Call):
                        # create_task(self.m(...)) passes the coroutine.
                        arg = arg.func
                    if (
                        isinstance(arg, ast.Attribute)
                        and isinstance(arg.value, ast.Name)
                        and arg.value.id == "self"
                        and arg.attr in self.methods
                    ):
                        entries.append(arg.attr)
        return sorted(set(entries))

    def _build_touch_witnesses(self) -> None:
        """Fixpoint: which methods mutate shared state on a path not
        already dominated by one of the class's own locks."""
        direct: dict[str, Optional[tuple[str, int]]] = {}
        calls: dict[str, set[str]] = {}
        for name, node in self.methods.items():
            touches, callees = self._scan_unprotected(node.body)
            direct[name] = touches[0] if touches else None
            calls[name] = callees
        for name, hit in direct.items():
            if hit is not None:
                self.witness[name] = (hit[0], hit[1], name)
        changed = True
        while changed:
            changed = False
            for name, callees in calls.items():
                if name in self.witness:
                    continue
                for callee in sorted(callees):
                    if callee in self.witness:
                        attr, line, via = self.witness[callee]
                        self.witness[name] = (attr, line, via)
                        changed = True
                        break

    def _scan_unprotected(
        self, body: list[ast.stmt]
    ) -> tuple[list[tuple[str, int]], set[str]]:
        """Direct touches and same-class callees outside lock regions."""
        touches: list[tuple[str, int]] = []
        callees: set[str] = set()
        for stmt in body:
            if isinstance(stmt, (ast.With, ast.AsyncWith)) and any(
                _is_lockish(item.context_expr, self.lock_attrs)
                for item in stmt.items
            ):
                continue  # dominated by the lock: not "unprotected"
            for attr, line in self.stmt_touches(stmt, recurse=False):
                touches.append((attr, line))
            callees.update(m for m, _ in self.method_calls(stmt, recurse=False))
            for inner in self._child_blocks(stmt):
                sub_touches, sub_callees = self._scan_unprotected(inner)
                touches.extend(sub_touches)
                callees.update(sub_callees)
        return touches, callees

    @staticmethod
    def _child_blocks(stmt: ast.stmt) -> list[list[ast.stmt]]:
        blocks: list[list[ast.stmt]] = []
        for attr in ("body", "orelse", "finalbody"):
            inner = getattr(stmt, attr, None)
            if inner and isinstance(inner[0], ast.stmt):
                blocks.append(inner)
        for handler in getattr(stmt, "handlers", []):
            blocks.append(handler.body)
        return blocks

    # -- per-statement queries ----------------------------------------------

    def stmt_touches(
        self, stmt: ast.stmt, recurse: bool = True
    ) -> list[tuple[str, int]]:
        """Shared-state mutations directly inside ``stmt``.

        With ``recurse=False`` only the statement's own expressions are
        inspected (compound bodies are handled by the walkers).
        """
        touches: list[tuple[str, int]] = []
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        for target in targets:
            for leaf in self._target_leaves(target):
                attr = _self_attr_root(leaf)
                if attr and attr not in self.lock_attrs:
                    touches.append((attr, stmt.lineno))
        scan = _iter_no_defs(stmt) if recurse else self._own_exprs(stmt)
        for node in scan:
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATING_METHODS
            ):
                attr = _self_attr_root(func.value)
                if attr and attr not in self.lock_attrs:
                    touches.append((attr, node.lineno))
        return touches

    def method_calls(
        self, stmt: ast.stmt, recurse: bool = True
    ) -> list[tuple[str, int]]:
        """Calls to same-class methods (``self.m(...)``) in ``stmt``."""
        found: list[tuple[str, int]] = []
        scan = _iter_no_defs(stmt) if recurse else self._own_exprs(stmt)
        for node in scan:
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"
                and node.func.attr in self.methods
            ):
                found.append((node.func.attr, node.lineno))
        return found

    @staticmethod
    def _target_leaves(target: ast.expr) -> Iterator[ast.expr]:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                yield from _ClassModel._target_leaves(element)
        else:
            yield target

    @staticmethod
    def _own_exprs(stmt: ast.stmt) -> Iterator[ast.AST]:
        """Expressions belonging to ``stmt`` itself, not nested blocks."""
        for field_name, value in ast.iter_fields(stmt):
            if field_name in ("body", "orelse", "finalbody", "handlers"):
                continue
            nodes = value if isinstance(value, list) else [value]
            for node in nodes:
                if isinstance(node, ast.expr):
                    yield from _iter_no_defs(node)
            if field_name == "items":  # with-statement context managers
                for item in value:
                    yield from _iter_no_defs(item.context_expr)


@register
class AsyncSafetyChecker(Checker):
    """RPR007: no blocking calls reachable from the event loop, no
    unlocked shared-state transactions across awaits, no lock-ordering
    hazards (scope: repro.live, repro.runtime)."""

    code = "RPR007"
    summary = (
        "async/lock discipline in repro.live + repro.runtime: blocking "
        "calls reachable from async defs, shared-state mutation across "
        "an await outside the lock, nested lock acquisition, and await "
        "under a sync lock"
    )

    def check_project(self, project: Project) -> Iterable[Diagnostic]:
        yield from self._check_blocking(project)
        for module in project.modules:
            if not in_scope(module.name):
                continue
            yield from self._check_classes(module, project)
            yield from self._check_lock_nesting(module)

    # -- rule 1: blocking calls reachable from async defs --------------------

    def _check_blocking(self, project: Project) -> Iterator[Diagnostic]:
        graph = project.call_graph
        roots = sorted(
            info.ref
            for info in graph.functions.values()
            if info.is_async and in_scope(info.module.name)
        )
        if not roots:
            return
        seen: set[tuple[str, int]] = set()
        for ref, chain in sorted(graph.reachable_from(roots).items()):
            info = graph.functions[ref]
            for node in _iter_no_defs(info.node):
                if not isinstance(node, ast.Call):
                    continue
                reason = _blocking_reason(node)
                if reason is None:
                    continue
                key = (info.module.path, node.lineno)
                if key in seen:
                    continue
                seen.add(key)
                root_ref = chain[0].caller if chain else ref
                root = graph.functions[root_ref]
                because = [
                    Because(
                        path=root.module.path,
                        line=root.node.lineno,
                        note=(
                            f"async def {_short(root_ref)}() runs on "
                            "the event loop"
                        ),
                    )
                ]
                because += [
                    Because(
                        path=site.path,
                        line=site.line,
                        note=(
                            f"{_short(site.caller)}() calls "
                            f"{_short(site.callee)}() here"
                        ),
                    )
                    for site in chain
                ]
                yield self.diagnostic(
                    info.module.path, node.lineno, node.col_offset + 1,
                    f"{reason}; it is reachable from async def "
                    f"{_short(root_ref)}() and stalls the event loop — "
                    "use the asyncio equivalent or run_in_executor",
                    because=tuple(because),
                )

    # -- rule 2: unlocked shared-state transactions --------------------------

    def _check_classes(
        self, module: ModuleInfo, project: Project
    ) -> Iterator[Diagnostic]:
        functions = project.symbols.functions_in(module)
        classes: dict[str, dict[str, FunctionNode]] = {}
        for qualname, node in functions.items():
            if "." not in qualname:
                continue
            cls, method = qualname.rsplit(".", 1)
            if "." in cls:
                continue
            classes.setdefault(cls, {})[method] = node
        for cls in sorted(classes):
            model = _ClassModel(module, cls, classes[cls])
            if model.entry_points:
                yield from self._check_transactions(model)

    def _check_transactions(self, model: _ClassModel) -> Iterator[Diagnostic]:
        queue: deque[tuple[str, bool]] = deque(
            (entry, False) for entry in model.entry_points
        )
        visited: set[tuple[str, bool]] = set()
        flagged: set[tuple[int, str]] = set()
        found: list[Diagnostic] = []
        while queue:
            method, protected = queue.popleft()
            if (method, protected) in visited:
                continue
            visited.add((method, protected))
            walker = _TxnWalker(self, model, protected, flagged, found)
            walker.walk(model.methods[method].body, _TxnState(), protected)
            for callee, callee_protected in walker.scheduled:
                if (callee, callee_protected) not in visited:
                    queue.append((callee, callee_protected))
        yield from found

    # -- rule 3: lock nesting / await under a sync lock ----------------------

    def _check_lock_nesting(self, module: ModuleInfo) -> Iterator[Diagnostic]:
        lock_attrs: frozenset[str] = frozenset()
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._lock_walk(
                    module, node.body, lock_attrs, held=[], sync_held=0
                )

    def _lock_walk(
        self,
        module: ModuleInfo,
        body: list[ast.stmt],
        lock_attrs: frozenset[str],
        held: list[str],
        sync_held: int,
    ) -> Iterator[Diagnostic]:
        for stmt in body:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                lock_names = [
                    ast.unparse(item.context_expr)
                    for item in stmt.items
                    if _is_lockish(item.context_expr, lock_attrs)
                ]
                if lock_names and held:
                    yield self.diagnostic(
                        module.path, stmt.lineno, stmt.col_offset + 1,
                        f"acquires {lock_names[0]} while already holding "
                        f"{held[-1]}; nested lock acquisition invites "
                        "deadlock — widen the outer critical section "
                        "instead",
                    )
                if (
                    isinstance(stmt, ast.AsyncWith)
                    and sync_held
                    and not lock_names
                ):
                    yield self.diagnostic(
                        module.path, stmt.lineno, stmt.col_offset + 1,
                        "async with (an await) while holding a sync lock; "
                        "the event loop suspends with the lock held",
                    )
                new_sync = sync_held + (
                    1 if lock_names and isinstance(stmt, ast.With) else 0
                )
                yield from self._lock_walk(
                    module, stmt.body, lock_attrs,
                    held + lock_names, new_sync,
                )
                continue
            if sync_held and any(
                isinstance(n, ast.Await)
                for n in _ClassModel._own_exprs(stmt)
            ):
                yield self.diagnostic(
                    module.path, stmt.lineno, stmt.col_offset + 1,
                    "await while holding a synchronous lock; the event "
                    "loop suspends with the lock held and every thread "
                    "contending for it stalls",
                )
            for block in _ClassModel._child_blocks(stmt):
                yield from self._lock_walk(
                    module, block, lock_attrs, held, sync_held
                )


class _TxnWalker:
    """Statement walker implementing rule 2's path-sensitive tracking."""

    def __init__(
        self,
        checker: AsyncSafetyChecker,
        model: _ClassModel,
        entry_protected: bool,
        flagged: set[tuple[int, str]],
        found: list[Diagnostic],
    ) -> None:
        self.checker = checker
        self.model = model
        self.flagged = flagged
        self.found = found
        self.scheduled: set[tuple[str, bool]] = set()

    def walk(
        self, body: list[ast.stmt], state: _TxnState, protected: bool
    ) -> _TxnState:
        for stmt in body:
            if state.terminated:
                break
            state = self._step(stmt, state, protected)
        return state

    # -- one statement -------------------------------------------------------

    def _step(
        self, stmt: ast.stmt, state: _TxnState, protected: bool
    ) -> _TxnState:
        model = self.model
        if isinstance(stmt, (ast.Return, ast.Raise, ast.Break, ast.Continue)):
            return replace(state, terminated=True)

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            locked = any(
                _is_lockish(item.context_expr, model.lock_attrs)
                for item in stmt.items
            )
            if isinstance(stmt, ast.AsyncWith):
                state = self._await_event(state, protected, stmt.lineno)
            if locked:
                self.walk(stmt.body, _TxnState(), True)
                return state  # lock released; outer state unchanged
            inner = self.walk(stmt.body, state, protected)
            return replace(inner, terminated=False)

        if isinstance(stmt, ast.If):
            state = self._expr_events(stmt, state, protected, stmt.test)
            branches = [
                self.walk(stmt.body, state, protected),
                self.walk(stmt.orelse, state, protected),
            ]
            return _merge(branches)

        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            if isinstance(stmt, ast.AsyncFor):
                state = self._await_event(state, protected, stmt.lineno)
            test = getattr(stmt, "test", None) or getattr(stmt, "iter", None)
            if test is not None:
                state = self._expr_events(stmt, state, protected, test)
            # Two passes over the body so a touch at the bottom of one
            # iteration meets an await at the top of the next.
            once = _merge([self.walk(list(stmt.body), state, protected),
                           state])
            twice = self.walk(list(stmt.body), once, protected)
            after = _merge([twice, once])
            return self.walk(stmt.orelse, after, protected)

        if isinstance(stmt, ast.Try):
            after_body = self.walk(stmt.body, state, protected)
            handler_states = [
                # A handler can fire at any point of the body; analyzing
                # it from the try-entry state is the under-approximation.
                self.walk(handler.body, state, protected)
                for handler in stmt.handlers
            ]
            after_else = self.walk(stmt.orelse, after_body, protected)
            merged = _merge([after_else, *handler_states])
            final = self.walk(
                stmt.finalbody, replace(merged, terminated=False), protected
            )
            if merged.terminated:
                final = replace(final, terminated=True)
            return final

        return self._simple(stmt, state, protected)

    def _simple(
        self, stmt: ast.stmt, state: _TxnState, protected: bool
    ) -> _TxnState:
        model = self.model
        for callee, _ in model.method_calls(stmt):
            self.scheduled.add((callee, protected))
        touches = model.stmt_touches(stmt) if not protected else []
        call_touches = (
            [
                (model.witness[callee][0], line)
                for callee, line in model.method_calls(stmt)
                if callee in model.witness
            ]
            if not protected
            else []
        )
        has_await = _contains_await(stmt)
        if protected:
            return state
        all_touches = touches + call_touches
        if not all_touches:
            if has_await:
                return self._await_event(state, protected, stmt.lineno)
            return state
        if has_await and isinstance(stmt, ast.AugAssign) and touches:
            # self.x += await f(): the read happens before the await,
            # the write after — a one-statement unlocked transaction.
            self._flag(
                stmt.lineno, touches[0][0],
                first=(stmt.lineno, touches[0][0]),
                await_line=stmt.lineno,
                single=True,
            )
            return replace(
                state, touch=(stmt.lineno, touches[0][0]), await_line=None
            )
        if has_await:
            # Awaited call producing the value stored: treat as
            # await-then-touch on this path.
            state = self._await_event(state, protected, stmt.lineno)
        if state.touch and state.await_line:
            attr = all_touches[0][0]
            self._flag(
                all_touches[0][1], attr,
                first=state.touch, await_line=state.await_line,
            )
            return _TxnState(touch=(all_touches[0][1], attr))
        if state.touch is None:
            return _TxnState(touch=(all_touches[0][1], all_touches[0][0]))
        return state

    # -- events and reporting ------------------------------------------------

    def _expr_events(
        self,
        stmt: ast.stmt,
        state: _TxnState,
        protected: bool,
        expr: ast.expr,
    ) -> _TxnState:
        if _contains_await(expr):
            state = self._await_event(state, protected, stmt.lineno)
        return state

    def _await_event(
        self, state: _TxnState, protected: bool, line: int
    ) -> _TxnState:
        if protected or state.touch is None or state.await_line is not None:
            return state
        return replace(state, await_line=line)

    def _flag(
        self,
        line: int,
        attr: str,
        first: tuple[int, str],
        await_line: int,
        single: bool = False,
    ) -> None:
        key = (line, attr)
        if key in self.flagged:
            return
        self.flagged.add(key)
        model = self.model
        lock = (
            f"self.{sorted(model.lock_attrs)[0]}"
            if model.lock_attrs
            else "a lock"
        )
        if single:
            message = (
                f"read-modify-write of self.{attr} straddles an await "
                f"without holding {lock}; another task can interleave "
                "between the read and the write"
            )
            because = (
                Because(
                    path=model.module.path,
                    line=line,
                    note="the await suspends between load and store",
                ),
            )
        else:
            message = (
                f"self.{attr} mutated after an await without holding "
                f"{lock}; the transaction that began at line "
                f"{first[0]} is not atomic — another task can "
                "interleave at the suspension point"
            )
            because = (
                Because(
                    path=model.module.path,
                    line=first[0],
                    note=f"transaction begins: self.{first[1]} mutated here",
                ),
                Because(
                    path=model.module.path,
                    line=await_line,
                    note="an await after this point suspends the task",
                ),
            )
        self.found.append(
            self.checker.diagnostic(
                model.module.path, line, 1, message, because=because
            )
        )


def _short(ref: str) -> str:
    """``module::Cls.method`` → ``Cls.method`` for messages."""
    return ref.split("::", 1)[-1]
