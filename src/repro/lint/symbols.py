"""The whole-project symbol table: definitions, imports, method lookup.

:class:`SymbolTable` indexes every linted module's top-level functions,
classes, and methods by *qualified name* (``TTLProtocol.is_fresh``),
resolves each module's import aliases back to dotted project names, and
walks base-class chains so checkers can answer "which method actually
runs here?" across files.  It is the substrate the project-wide
dataflow checkers build on:

* RPR007 follows the call graph (:mod:`repro.lint.callgraph`) from
  ``async def`` bodies into sync helpers;
* RPR008 resolves each fast-path kernel branch to the protocol method
  it transcribes, inlining ``super().is_fresh`` / ``self._helper``
  calls through the MRO;
* RPR009 propagates inferred units through function signatures and
  returns at resolved call sites.

Everything is derived from the parsed :class:`~repro.lint.project
.Project` — stdlib ``ast`` only, nothing is imported or executed.

Known imprecision (documented in docs/DEVELOPING.md): names are
resolved *statically* — conditional imports, ``setattr``/``getattr``
indirection, decorators that replace functions, star imports, and
multiple inheritance beyond the first resolvable base are not modelled.
When resolution fails the table answers ``None`` and checkers must
degrade to silence, never to guesses.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, Optional, Union

from repro.lint.project import ModuleInfo, Project

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass(frozen=True)
class Symbol:
    """One resolved definition.

    Attributes:
        module: the module the definition lives in.
        qualname: dotted name *within* the module
            (``Cls.method``, ``function``, ``Cls``).
        node: the defining AST node.
        kind: ``"function"``, ``"class"``, or ``"module"`` (for module
            references ``node`` is the module's ``ast.Module``).
    """

    module: ModuleInfo
    qualname: str
    node: ast.AST
    kind: str

    @property
    def ref(self) -> str:
        """Globally unique id: ``<module dotted name>::<qualname>``."""
        if self.kind == "module":
            return self.module.name
        return f"{self.module.name}::{self.qualname}"


class _ModuleIndex:
    """Per-module definition and import tables."""

    def __init__(self, module: ModuleInfo) -> None:
        self.module = module
        #: qualname -> def node, for functions/methods (one class level).
        self.functions: dict[str, FunctionNode] = {}
        #: qualname -> ClassDef.
        self.classes: dict[str, ast.ClassDef] = {}
        #: local name -> absolute dotted target ("repro.core.cache.Cache"
        #: for ``from repro.core.cache import Cache``, "repro.core.cache"
        #: for ``import repro.core.cache``).
        self.imports: dict[str, str] = {}
        self._index(module.tree.body, prefix="")

    def _index(self, body: list[ast.stmt], prefix: str) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[prefix + node.name] = node
            elif isinstance(node, ast.ClassDef):
                qualname = prefix + node.name
                self.classes[qualname] = node
                self._index(node.body, prefix=qualname + ".")
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = self._absolute_base(node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue  # star imports are not modelled
                    local = alias.asname or alias.name
                    self.imports[local] = f"{base}.{alias.name}" if base else alias.name

    def _absolute_base(self, node: ast.ImportFrom) -> Optional[str]:
        """The absolute dotted module a ``from ... import`` names."""
        if node.level == 0:
            return node.module or ""
        # Relative import: climb from this module's package.
        parts = self.module.name.split(".")
        # ``from .x import y`` inside package ``a.b`` (module a.b.c):
        # level 1 strips the module segment, each further level one more.
        if len(parts) < node.level:
            return None
        base_parts = parts[: len(parts) - node.level]
        if node.module:
            base_parts.append(node.module)
        return ".".join(base_parts)


class SymbolTable:
    """Project-wide name resolution over parsed modules."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self._indexes: dict[str, _ModuleIndex] = {
            m.name: _ModuleIndex(m) for m in project.modules
        }

    # -- per-module views ----------------------------------------------------

    def functions_in(self, module: ModuleInfo) -> dict[str, FunctionNode]:
        """qualname -> def node for every function/method in ``module``."""
        return self._indexes[module.name].functions

    def classes_in(self, module: ModuleInfo) -> dict[str, ast.ClassDef]:
        """qualname -> ClassDef for every class in ``module``."""
        return self._indexes[module.name].classes

    def imports_in(self, module: ModuleInfo) -> dict[str, str]:
        """local name -> absolute dotted target for ``module``'s imports."""
        return self._indexes[module.name].imports

    # -- global resolution ---------------------------------------------------

    def lookup(self, module_name: str, qualname: str) -> Optional[Symbol]:
        """The definition of ``qualname`` inside module ``module_name``."""
        index = self._indexes.get(module_name)
        if index is None:
            return None
        if qualname in index.functions:
            return Symbol(index.module, qualname, index.functions[qualname], "function")
        if qualname in index.classes:
            return Symbol(index.module, qualname, index.classes[qualname], "class")
        return None

    def resolve_dotted(self, dotted: str) -> Optional[Symbol]:
        """Resolve an absolute dotted name to a project symbol.

        Tries the longest module prefix first, then the remainder as a
        qualname inside it; a bare module name resolves to a
        ``"module"`` symbol.
        """
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            module_name = ".".join(parts[:cut])
            module = self.project.module(module_name)
            if module is None:
                continue
            rest = ".".join(parts[cut:])
            if not rest:
                return Symbol(module, "", module.tree, "module")
            found = self.lookup(module_name, rest)
            if found is not None:
                return found
            # An imported name re-exported from the module (one hop).
            index = self._indexes[module_name]
            head = parts[cut]
            if head in index.imports:
                onward = index.imports[head] + (
                    "." + ".".join(parts[cut + 1:]) if cut + 1 < len(parts) else ""
                )
                if onward != dotted:
                    return self.resolve_dotted(onward)
            return None
        return None

    def resolve_name(
        self, module: ModuleInfo, dotted_parts: list[str]
    ) -> Optional[Symbol]:
        """Resolve ``a.b.c`` as written in ``module`` (imports applied).

        The head segment is looked up among the module's own defs first,
        then its imports; anything unresolvable returns None.
        """
        if not dotted_parts:
            return None
        head, rest = dotted_parts[0], dotted_parts[1:]
        index = self._indexes[module.name]
        local = self.lookup(module.name, ".".join([head, *rest]))
        if local is not None:
            return local
        if head in index.imports:
            target = ".".join([index.imports[head], *rest])
            return self.resolve_dotted(target)
        return None

    # -- class hierarchy -----------------------------------------------------

    def mro(
        self, module: ModuleInfo, class_qualname: str
    ) -> Iterator[tuple[ModuleInfo, str, ast.ClassDef]]:
        """The class and its project-resolvable base chain, in order.

        Follows every base the project can resolve (left to right,
        depth-first, each class visited once) — exact Python MRO
        linearization is not reproduced, which is fine for the
        single-inheritance chains the checkers walk.
        """
        seen: set[str] = set()
        stack: list[tuple[ModuleInfo, str]] = [(module, class_qualname)]
        while stack:
            mod, qualname = stack.pop(0)
            ref = f"{mod.name}::{qualname}"
            if ref in seen:
                continue
            seen.add(ref)
            index = self._indexes.get(mod.name)
            if index is None or qualname not in index.classes:
                continue
            node = index.classes[qualname]
            yield mod, qualname, node
            bases: list[tuple[ModuleInfo, str]] = []
            for base in node.bases:
                resolved = self._resolve_base(mod, base)
                if resolved is not None:
                    bases.append(resolved)
            stack = bases + stack

    def _resolve_base(
        self, module: ModuleInfo, base: ast.expr
    ) -> Optional[tuple[ModuleInfo, str]]:
        parts = _dotted_parts(base)
        if parts is None:
            return None
        symbol = self.resolve_name(module, parts)
        if symbol is not None and symbol.kind == "class":
            return symbol.module, symbol.qualname
        return None

    def resolve_method(
        self, module: ModuleInfo, class_qualname: str, method: str
    ) -> Optional[Symbol]:
        """The defining class's ``method`` along the MRO, or None."""
        for mod, qualname, _node in self.mro(module, class_qualname):
            found = self.lookup(mod.name, f"{qualname}.{method}")
            if found is not None and found.kind == "function":
                return found
        return None

    def resolve_super_method(
        self, module: ModuleInfo, class_qualname: str, method: str
    ) -> Optional[Symbol]:
        """``super().method`` resolution: skip the class itself."""
        chain = iter(self.mro(module, class_qualname))
        next(chain, None)  # drop the class itself
        for mod, qualname, _node in chain:
            found = self.lookup(mod.name, f"{qualname}.{method}")
            if found is not None and found.kind == "function":
                return found
        return None


def _dotted_parts(node: ast.expr) -> Optional[list[str]]:
    """``a.b.c`` attribute chains as ``["a", "b", "c"]``; None otherwise."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None
