"""The project call graph: who can call whom, with call-site evidence.

Built once per lint run from the :class:`~repro.lint.symbols
.SymbolTable`, the graph's nodes are function/method definitions
(identified by ``module::qualname`` refs) and its edges are *resolved*
call sites.  The resolution rules — deliberately static and
conservative — are:

* ``f(...)`` — a name defined (or imported) in the calling module;
* ``mod.f(...)`` / ``alias.f(...)`` — an imported module's top-level
  function;
* ``self.m(...)`` inside a class — resolved through the class's base
  chain (the method that would actually run, as far as single
  inheritance determines it);
* ``super().m(...)`` inside a class — resolved starting *past* the
  class itself;
* ``Cls(...)`` — an edge to ``Cls.__init__`` when the class and its
  chain define one.

Calls on arbitrary objects (``self.cache.store(...)``,
``response.headers.set(...)``) are **not** resolved — static type
inference is out of scope; checkers that care about such calls match
them syntactically instead.  An unresolved call simply contributes no
edge, so reachability answers are under-approximate: good for "flag
only what we can prove", the documented bias of every RPR checker.

:meth:`CallGraph.reachable_from` returns, for every function reachable
from a set of roots, the *shortest chain of call sites* that proves it
— exactly the material a diagnostic's because-chain wants.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.lint.project import ModuleInfo, Project
from repro.lint.symbols import (
    FunctionNode,
    Symbol,
    SymbolTable,
    _dotted_parts,
)


@dataclass(frozen=True)
class CallSite:
    """One resolved call: ``caller`` invokes ``callee`` at path:line."""

    caller: str
    callee: str
    path: str
    line: int


@dataclass(frozen=True)
class FunctionInfo:
    """One call-graph node.

    Attributes:
        ref: ``module::qualname`` id.
        module: defining module.
        qualname: name within the module (``Cls.method`` for methods).
        node: the def node.
        is_async: True for ``async def``.
        class_qualname: enclosing class qualname, or None for plain
            functions.
    """

    ref: str
    module: ModuleInfo
    qualname: str
    node: FunctionNode
    is_async: bool
    class_qualname: Optional[str]


class CallGraph:
    """Resolved static call edges over the whole project."""

    def __init__(self, project: Project, symbols: SymbolTable) -> None:
        self.project = project
        self.symbols = symbols
        self.functions: dict[str, FunctionInfo] = {}
        self._edges: dict[str, list[CallSite]] = {}
        self._rev: dict[str, list[CallSite]] = {}
        for module in project.modules:
            for qualname, node in symbols.functions_in(module).items():
                ref = f"{module.name}::{qualname}"
                class_qualname = (
                    qualname.rsplit(".", 1)[0] if "." in qualname else None
                )
                self.functions[ref] = FunctionInfo(
                    ref=ref,
                    module=module,
                    qualname=qualname,
                    node=node,
                    is_async=isinstance(node, ast.AsyncFunctionDef),
                    class_qualname=class_qualname,
                )
        for info in self.functions.values():
            self._edges[info.ref] = list(self._resolve_calls(info))
        for edges in self._edges.values():
            for edge in edges:
                self._rev.setdefault(edge.callee, []).append(edge)

    # -- queries -------------------------------------------------------------

    def callees(self, ref: str) -> list[CallSite]:
        """Outgoing resolved call sites of ``ref``."""
        return self._edges.get(ref, [])

    def callers(self, ref: str) -> list[CallSite]:
        """Incoming resolved call sites targeting ``ref``."""
        return self._rev.get(ref, [])

    def reachable_from(
        self, roots: Iterable[str]
    ) -> dict[str, tuple[CallSite, ...]]:
        """Every function reachable from ``roots``, with a proof path.

        Returns a map from reachable ref to the chain of call sites
        (outermost call first) that reaches it; roots map to an empty
        chain.
        """
        paths: dict[str, tuple[CallSite, ...]] = {}
        queue: deque[str] = deque()
        for root in roots:
            if root in self.functions and root not in paths:
                paths[root] = ()
                queue.append(root)
        while queue:
            current = queue.popleft()
            for edge in self._edges.get(current, []):
                if edge.callee not in paths:
                    paths[edge.callee] = paths[current] + (edge,)
                    queue.append(edge.callee)
        return paths

    # -- edge resolution -----------------------------------------------------

    def _resolve_calls(self, info: FunctionInfo) -> Iterable[CallSite]:
        for call in self._calls_in(info.node):
            target = self._resolve_callee(info, call)
            if target is None:
                continue
            yield CallSite(
                caller=info.ref,
                callee=target,
                path=info.module.path,
                line=call.lineno,
            )

    @staticmethod
    def _calls_in(node: FunctionNode) -> Iterable[ast.Call]:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                yield sub

    def _resolve_callee(
        self, info: FunctionInfo, call: ast.Call
    ) -> Optional[str]:
        func = call.func
        # super().m(...)
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Call)
            and isinstance(func.value.func, ast.Name)
            and func.value.func.id == "super"
            and info.class_qualname is not None
        ):
            found = self.symbols.resolve_super_method(
                info.module, info.class_qualname, func.attr
            )
            return self._function_ref(found)
        # self.m(...)
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and info.class_qualname is not None
        ):
            found = self.symbols.resolve_method(
                info.module, info.class_qualname, func.attr
            )
            return self._function_ref(found)
        parts = _dotted_parts(func)
        if parts is None:
            return None
        symbol = self.symbols.resolve_name(info.module, parts)
        if symbol is None:
            return None
        if symbol.kind == "class":
            ctor = self.symbols.resolve_method(
                symbol.module, symbol.qualname, "__init__"
            )
            return self._function_ref(ctor)
        return self._function_ref(symbol)

    @staticmethod
    def _function_ref(symbol: Optional[Symbol]) -> Optional[str]:
        if symbol is None or symbol.kind != "function":
            return None
        return symbol.ref
