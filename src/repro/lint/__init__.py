"""Static invariant analysis for the reproduction (``repro lint``).

The paper's results rest on properties no unit test fully pins down:
bit-identical determinism across worker counts (docs/PERFORMANCE.md),
bytes-vs-seconds discipline in the bandwidth ledger behind Table 1 and
Figures 4-8, and the PR-2 oracle replaying *every* observer event the
simulator can emit.  This package enforces those properties at analysis
time with a stdlib-``ast`` pass over the source tree:

========  ==============================================================
RPR001    determinism: no global/unseeded RNG, wall clocks, ambient
          entropy, or set-order iteration in repro.core / repro.workload
          / repro.verify (seeds flow through repro.runtime.derive_seed)
RPR002    units: ``*_bytes`` / ``*_seconds`` / ``*_count`` quantities
          never meet in additive arithmetic or ordered comparisons
RPR003    conformance: protocol subclasses implement the hook set, are
          exported, and have spec rules; experiment modules are
          registered in experiments/registry.py
RPR004    oracle exhaustiveness: EVENT_KINDS == simulator emissions ==
          SpecModel replay alphabet
RPR005    hygiene: no mutable default arguments or shadowed builtins
========  ==============================================================

Run it as ``python -m repro.lint src``, ``repro-lint src``, or ``make
lint``; suppress single findings with ``# repro: noqa[RPR001]`` and
grandfather pre-existing debt with ``--update-baseline``.  See
docs/DEVELOPING.md for the full workflow and
:mod:`repro.lint.registry` for adding checkers.
"""

from repro.lint.baseline import load_baseline, write_baseline
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.engine import LintResult, check_project, run_lint
from repro.lint.project import ModuleInfo, Project, load_project
from repro.lint.registry import (
    Checker,
    all_checkers,
    checker_codes,
    get_checker,
    register,
)

__all__ = [
    "Checker",
    "Diagnostic",
    "LintResult",
    "ModuleInfo",
    "Project",
    "Severity",
    "all_checkers",
    "check_project",
    "checker_codes",
    "get_checker",
    "load_baseline",
    "load_project",
    "register",
    "run_lint",
    "write_baseline",
]
