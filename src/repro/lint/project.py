"""The linted-source model: parsed modules plus project-wide lookups.

The engine parses every ``.py`` file once into a :class:`ModuleInfo`
(source text, AST, dotted module name, per-line ``noqa`` suppressions)
and bundles them into a :class:`Project` so cross-module checkers —
protocol registration (RPR003), observer-event exhaustiveness (RPR004) —
can resolve their counterpart files by dotted name instead of by path.

Module names are derived from the path: everything after a ``src``
component (the repo layout), else everything from the first ``repro``
component, else the bare stem.  Fixture trees in tests reuse the same
rule by mimicking a ``src/repro/...`` layout, or by constructing
:class:`ModuleInfo` directly with an explicit name.

Suppression syntax, checked per physical line::

    something_noisy()  # repro: noqa[RPR001]
    another()          # repro: noqa[RPR001, RPR005]
    everything()       # repro: noqa

A bare ``noqa`` suppresses every code on that line; the bracketed form
suppresses only the listed codes.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lint.callgraph import CallGraph
    from repro.lint.symbols import SymbolTable

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Z0-9,\s]+)\])?", re.IGNORECASE
)

#: Sentinel stored for a bare ``# repro: noqa`` (suppresses all codes).
ALL_CODES = "*"


def module_name_for(path: Path) -> str:
    """Derive a dotted module name from a file path (see module docs)."""
    parts = list(path.parts)
    parts[-1] = path.stem
    if parts and parts[-1] == "__init__":
        parts.pop()
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    elif "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        parts = parts[-1:] if parts else []
    return ".".join(parts)


def parse_noqa(source: str) -> dict[int, set[str]]:
    """Map 1-based line numbers to the codes suppressed on that line."""
    suppressions: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(line)
        if match is None:
            continue
        codes = match.group("codes")
        if codes is None:
            suppressions[lineno] = {ALL_CODES}
        else:
            suppressions[lineno] = {
                c.strip().upper() for c in codes.split(",") if c.strip()
            }
    return suppressions


@dataclass
class ModuleInfo:
    """One parsed source file.

    Attributes:
        path: display path (relative to the lint root when possible).
        name: dotted module name, e.g. ``repro.core.simulator``.
        source: raw file text.
        tree: parsed :mod:`ast` module.
        noqa: per-line suppression table from :func:`parse_noqa`.
    """

    path: str
    name: str
    source: str
    tree: ast.Module
    noqa: dict[int, set[str]] = field(default_factory=dict)

    @classmethod
    def from_source(
        cls, source: str, path: str = "<string>", name: Optional[str] = None
    ) -> "ModuleInfo":
        """Parse ``source`` directly (the unit-test entry point).

        Raises:
            SyntaxError: when the source does not parse.
        """
        if name is None:
            name = module_name_for(Path(path))
        return cls(
            path=path,
            name=name,
            source=source,
            tree=ast.parse(source, filename=path),
            noqa=parse_noqa(source),
        )

    def suppressed(self, code: str, line: int) -> bool:
        """True when ``code`` is noqa'd on ``line``."""
        codes = self.noqa.get(line)
        if not codes:
            return False
        return ALL_CODES in codes or code.upper() in codes

    def line_text(self, line: int) -> str:
        """The stripped source text of 1-based ``line`` ('' off-range)."""
        lines = self.source.splitlines()
        if 1 <= line <= len(lines):
            return lines[line - 1].strip()
        return ""


class Project:
    """Every module under the lint roots, addressable by dotted name.

    Two project-wide analyses are built lazily and shared by every
    checker that asks: :attr:`symbols` (definitions, imports, method
    resolution — :mod:`repro.lint.symbols`) and :attr:`call_graph`
    (resolved call edges — :mod:`repro.lint.callgraph`).
    """

    def __init__(self, modules: Iterable[ModuleInfo]) -> None:
        self.modules: list[ModuleInfo] = list(modules)
        self._by_name: dict[str, ModuleInfo] = {
            m.name: m for m in self.modules
        }
        self._symbols: Optional[object] = None
        self._call_graph: Optional[object] = None

    def module(self, name: str) -> Optional[ModuleInfo]:
        """The module with dotted name ``name``, or None if not linted."""
        return self._by_name.get(name)

    @property
    def symbols(self) -> "SymbolTable":
        """The whole-project symbol table (built on first use)."""
        if self._symbols is None:
            from repro.lint.symbols import SymbolTable

            self._symbols = SymbolTable(self)
        return self._symbols  # type: ignore[return-value]

    @property
    def call_graph(self) -> "CallGraph":
        """The project call graph (built on first use)."""
        if self._call_graph is None:
            from repro.lint.callgraph import CallGraph

            self._call_graph = CallGraph(self, self.symbols)
        return self._call_graph  # type: ignore[return-value]

    def in_package(self, package: str) -> list[ModuleInfo]:
        """All modules inside ``package`` (inclusive of its ``__init__``)."""
        prefix = package + "."
        return [
            m for m in self.modules
            if m.name == package or m.name.startswith(prefix)
        ]


class LintError(Exception):
    """A file could not be linted (unreadable or unparseable)."""


def collect_paths(paths: Iterable[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Raises:
        LintError: when a named path does not exist.
    """
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            files.append(path)
        else:
            raise LintError(f"no such file or directory: {path}")
    seen: set[Path] = set()
    unique: list[Path] = []
    for f in files:
        if f not in seen:
            seen.add(f)
            unique.append(f)
    return unique


def load_project(paths: Iterable[Path], root: Optional[Path] = None) -> Project:
    """Parse every ``.py`` file under ``paths`` into a :class:`Project`.

    Args:
        paths: files and/or directories to lint.
        root: base for display paths; defaults to the current directory
            (paths outside it stay absolute).

    Raises:
        LintError: on missing paths or files that fail to parse.
    """
    base = root if root is not None else Path.cwd()
    modules: list[ModuleInfo] = []
    for file_path in collect_paths(paths):
        try:
            display = str(file_path.resolve().relative_to(base.resolve()))
        except ValueError:
            display = str(file_path)
        try:
            source = file_path.read_text(encoding="utf-8")
            module = ModuleInfo.from_source(
                source, path=display, name=module_name_for(file_path)
            )
        except (OSError, SyntaxError) as exc:
            raise LintError(f"cannot lint {file_path}: {exc}") from exc
        modules.append(module)
    return Project(modules)
