"""Turn tool output into GitHub Actions annotations.

``python -m repro.lint.annotations --tool mypy`` reads the tool's
stdout on stdin, echoes every line unchanged (so the CI log stays
readable), and additionally emits a ``::error file=...,line=...::``
workflow command for each line that parses as a finding — which GitHub
renders as an inline annotation on the PR diff.

The filter always exits 0: it is a *formatter*, not a gate.  Pipe it
after the tool under ``set -o pipefail`` so the tool's own exit status
still fails the CI step::

    mypy --strict src/repro | python -m repro.lint.annotations --tool mypy

Only ``mypy`` is wired up today (``repro lint`` emits its own
annotations via ``--format github``); the tool registry makes adding
another ``path:line: level: message`` tool a one-liner.
"""

from __future__ import annotations

import argparse
import re
import sys
from typing import Optional, Sequence, TextIO

from repro.lint.formats import github_command

# mypy lines look like:
#   src/repro/core/cache.py:42: error: Incompatible return value  [return-value]
#   src/repro/core/cache.py:42:7: error: ...          (with --show-column-numbers)
#   src/repro/core/cache.py:42: note: See https://...
_MYPY_LINE = re.compile(
    r"^(?P<path>[^:\s][^:]*\.pyi?):(?P<line>\d+)(?::(?P<col>\d+))?:\s+"
    r"(?P<level>error|warning|note):\s+(?P<message>.*)$"
)

_LEVELS = {"error": "error", "warning": "warning", "note": "notice"}


def annotate_mypy(line: str) -> Optional[str]:
    """The annotation command for one mypy output line, if it is a finding."""
    match = _MYPY_LINE.match(line)
    if match is None:
        return None
    level = _LEVELS[match.group("level")]
    col = int(match.group("col") or 1)
    return github_command(
        level,
        match.group("path"),
        int(match.group("line")),
        col,
        "mypy",
        match.group("message"),
    )


_TOOLS = {"mypy": annotate_mypy}


def annotate_stream(
    tool: str, stream: TextIO, out: TextIO = sys.stdout
) -> int:
    """Echo ``stream`` to ``out``, interleaving annotation commands.

    Returns:
        The number of annotations emitted.
    """
    parse = _TOOLS[tool]
    emitted = 0
    for raw in stream:
        line = raw.rstrip("\n")
        print(line, file=out)
        command = parse(line)
        if command is not None:
            print(command, file=out)
            emitted += 1
    return emitted


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the annotation filter; always returns 0 (see module docs)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint.annotations",
        description=(
            "Echo tool output from stdin, adding GitHub Actions "
            "::error/::warning annotation commands for parsed findings."
        ),
    )
    parser.add_argument(
        "--tool", choices=sorted(_TOOLS), required=True,
        help="which tool's output format to parse",
    )
    args = parser.parse_args(argv)
    annotate_stream(args.tool, sys.stdin)
    return 0


if __name__ == "__main__":
    sys.exit(main())
