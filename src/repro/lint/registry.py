"""The pluggable checker registry.

A checker is a subclass of :class:`Checker` registered with the
:func:`register` decorator.  Each has a stable ``code`` (``RPRxxx``), a
one-line ``summary`` (shown by ``repro lint --list-codes``), and a
default :class:`~repro.lint.diagnostics.Severity`.  Checkers implement
either or both of:

* :meth:`Checker.check_module` — called once per linted file; the place
  for purely local rules (RPR001, RPR002, RPR005);
* :meth:`Checker.check_project` — called once per run with the whole
  :class:`~repro.lint.project.Project`; the place for cross-module
  invariants (RPR003 registration, RPR004 event exhaustiveness).

Registering a second checker under an existing code raises — codes are
the public contract (suppressions, baselines, docs all key on them).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Type

from repro.lint.diagnostics import Because, Diagnostic, Severity
from repro.lint.project import ModuleInfo, Project


class Checker:
    """Base class for one lint rule."""

    #: Stable public code, e.g. ``RPR001``.
    code: str = ""
    #: One-line description for ``--list-codes`` and docs.
    summary: str = ""
    #: Default severity for this rule's diagnostics.
    severity: Severity = Severity.ERROR

    def check_module(
        self, module: ModuleInfo, project: Project
    ) -> Iterable[Diagnostic]:
        """Per-file pass; yield diagnostics for ``module``."""
        return ()

    def check_project(self, project: Project) -> Iterable[Diagnostic]:
        """Whole-project pass; yield cross-module diagnostics."""
        return ()

    # -- helpers shared by the concrete checkers ----------------------------

    def diagnostic(
        self,
        module_path: str,
        line: int,
        col: int,
        message: str,
        because: tuple[Because, ...] = (),
    ) -> Diagnostic:
        """Build a diagnostic carrying this checker's code and severity.

        ``because`` optionally attaches the cross-file explanation
        chain (call path, inference provenance, diffed counterpart).
        """
        return Diagnostic(
            path=module_path,
            line=line,
            col=col,
            code=self.code,
            message=message,
            severity=self.severity,
            because=because,
        )


_REGISTRY: dict[str, Type[Checker]] = {}


def register(cls: Type[Checker]) -> Type[Checker]:
    """Class decorator adding a checker to the registry.

    Raises:
        ValueError: on a missing or duplicate code.
    """
    if not cls.code:
        raise ValueError(f"checker {cls.__name__} has no code")
    if cls.code in _REGISTRY:
        raise ValueError(f"duplicate checker code {cls.code!r}")
    _REGISTRY[cls.code] = cls
    return cls


def all_checkers() -> list[Checker]:
    """Fresh instances of every registered checker, in code order."""
    _ensure_loaded()
    return [_REGISTRY[code]() for code in sorted(_REGISTRY)]


def checker_codes() -> list[str]:
    """Every registered code, sorted."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def get_checker(code: str) -> Checker:
    """Instantiate the checker registered under ``code``.

    Raises:
        KeyError: for an unknown code (message lists the valid ones).
    """
    _ensure_loaded()
    try:
        return _REGISTRY[code.upper()]()
    except KeyError:
        raise KeyError(
            f"unknown checker code {code!r}; valid codes: "
            f"{', '.join(sorted(_REGISTRY))}"
        ) from None


def iter_registry() -> Iterator[tuple[str, Type[Checker]]]:
    """(code, class) pairs, sorted by code."""
    _ensure_loaded()
    return iter(sorted(_REGISTRY.items()))


def _ensure_loaded() -> None:
    """Import the built-in checker modules (idempotent)."""
    import repro.lint.checkers  # noqa: F401  (registration side effect)
