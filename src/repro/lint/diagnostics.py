"""Diagnostic records emitted by the invariant linter.

A :class:`Diagnostic` is one finding: *where* (file, line, column),
*what* (a stable ``RPRxxx`` code plus a human message), and *how bad*
(:class:`Severity`).  Renderings follow the conventional
``file:line:col: CODE message`` shape so editors and CI annotations can
parse them.

Cross-file checkers (the call-graph and dataflow rules, RPR007-RPR009)
can attach a **because chain**: an ordered list of :class:`Because`
steps explaining *why* the flagged line is implicated — the call path
from an ``async def`` to a blocking call, the definition site a unit
was inferred from, the protocol method a kernel branch was diffed
against.  The chain renders indented under the main line and rides
along in ``--format json``; it never participates in suppression
(a ``noqa`` works only on the diagnostic's own line) or in the
fingerprint.

Baselines match findings by :meth:`Diagnostic.fingerprint`, which
deliberately excludes the file path and the line/column: it hashes the
code, the message, and the *text of the offending source line*
(``context``), so a grandfathered finding survives file renames and
unrelated edits that shift it down the file, and disappears from the
baseline the moment the offending code itself is fixed (see
:mod:`repro.lint.baseline`).
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How a finding affects the lint exit status.

    ``ERROR`` findings fail the run; ``WARNING`` findings are printed
    but do not (unless ``--strict`` promotes them).
    """

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Because:
    """One step of a cross-file explanation chain.

    Attributes:
        path: file the step points at.
        line: 1-based line number of the step.
        note: what this step contributes to the finding.
    """

    path: str
    line: int
    note: str

    def render(self) -> str:
        """The canonical ``because: file:line: note`` line."""
        return f"because: {self.path}:{self.line}: {self.note}"


@dataclass(frozen=True)
class Diagnostic:
    """One linter finding.

    Attributes:
        path: file the finding is in, as given to the engine (kept
            relative to the lint root for stable baselines).
        line: 1-based line number.
        col: 1-based column number.
        code: stable checker code, e.g. ``RPR001``.
        message: human-readable explanation.
        severity: error or warning.
        because: optional cross-file explanation chain (outermost step
            first), e.g. the call path that makes a blocking call
            reachable from an ``async def``.
        context: the stripped text of the offending source line; the
            engine fills it in after checkers run.  Feeds the
            fingerprint so baselines survive renames.
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    severity: Severity = Severity.ERROR
    because: tuple[Because, ...] = field(default=())
    context: str = ""

    def render(self) -> str:
        """The canonical ``file:line:col: CODE message`` line(s).

        Because-chain steps render indented underneath, one per line.
        """
        suffix = " (warning)" if self.severity is Severity.WARNING else ""
        head = f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}{suffix}"
        if not self.because:
            return head
        steps = "\n".join(f"    {b.render()}" for b in self.because)
        return f"{head}\n{steps}"

    @property
    def fingerprint(self) -> str:
        """Stable identity for baseline matching.

        Hashes ``code::message::context`` — no path, no line/column —
        so the identity survives file renames and unrelated-line
        insertions, and changes exactly when the offending code (or the
        rule's verdict on it) changes.
        """
        raw = f"{self.code}::{self.message}::{self.context}"
        return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]
