"""Diagnostic records emitted by the invariant linter.

A :class:`Diagnostic` is one finding: *where* (file, line, column),
*what* (a stable ``RPRxxx`` code plus a human message), and *how bad*
(:class:`Severity`).  Renderings follow the conventional
``file:line:col: CODE message`` shape so editors and CI annotations can
parse them.

Baselines match findings by :meth:`Diagnostic.fingerprint`, which
deliberately excludes the line/column: a grandfathered finding stays
grandfathered when unrelated edits shift it down the file, and
disappears from the baseline the moment the offending code itself is
fixed (see :mod:`repro.lint.baseline`).
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass


class Severity(enum.Enum):
    """How a finding affects the lint exit status.

    ``ERROR`` findings fail the run; ``WARNING`` findings are printed
    but do not (unless ``--strict`` promotes them).
    """

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Diagnostic:
    """One linter finding.

    Attributes:
        path: file the finding is in, as given to the engine (kept
            relative to the lint root for stable baselines).
        line: 1-based line number.
        col: 1-based column number.
        code: stable checker code, e.g. ``RPR001``.
        message: human-readable explanation.
        severity: error or warning.
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    severity: Severity = Severity.ERROR

    def render(self) -> str:
        """The canonical ``file:line:col: CODE message`` line."""
        suffix = " (warning)" if self.severity is Severity.WARNING else ""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}{suffix}"

    @property
    def fingerprint(self) -> str:
        """Stable identity for baseline matching (line/col excluded)."""
        raw = f"{self.path}::{self.code}::{self.message}"
        return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]
