"""The lint driver: load, check, suppress, baseline.

:func:`run_lint` is the one entry point both the CLI and the tests go
through: it loads a :class:`~repro.lint.project.Project` from the given
paths, runs every selected checker (per-module passes first, then the
project-wide passes), drops diagnostics suppressed by inline
``# repro: noqa[CODE]`` comments, and partitions what is left against
the baseline.  The result is a :class:`LintResult`; rendering and exit
codes are the CLI's business.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.lint.baseline import load_baseline, split_baselined
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.project import Project, load_project
from repro.lint.registry import Checker, all_checkers


@dataclass
class LintResult:
    """Everything one lint run produced.

    Attributes:
        diagnostics: reportable findings (noqa'd and baselined ones
            removed), sorted by file, line, column, code.
        suppressed: findings silenced by inline ``noqa`` comments.
        baselined: findings matched by the baseline file.
        files_checked: how many files were parsed and checked.
    """

    diagnostics: list[Diagnostic] = field(default_factory=list)
    suppressed: list[Diagnostic] = field(default_factory=list)
    baselined: list[Diagnostic] = field(default_factory=list)
    files_checked: int = 0

    @property
    def errors(self) -> list[Diagnostic]:
        """Reportable findings at ERROR severity."""
        return [
            d for d in self.diagnostics if d.severity is Severity.ERROR
        ]

    @property
    def warnings(self) -> list[Diagnostic]:
        """Reportable findings at WARNING severity."""
        return [
            d for d in self.diagnostics if d.severity is Severity.WARNING
        ]


def _sort_key(d: Diagnostic) -> tuple[str, int, int, str]:
    return (d.path, d.line, d.col, d.code)


def _selected(
    select: Optional[Iterable[str]], ignore: Optional[Iterable[str]]
) -> list[Checker]:
    checkers = all_checkers()
    if select:
        wanted = {c.upper() for c in select}
        unknown = wanted - {c.code for c in checkers}
        if unknown:
            raise KeyError(
                f"unknown checker code(s): {', '.join(sorted(unknown))}"
            )
        checkers = [c for c in checkers if c.code in wanted]
    if ignore:
        dropped = {c.upper() for c in ignore}
        checkers = [c for c in checkers if c.code not in dropped]
    return checkers


def check_project(
    project: Project,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> tuple[list[Diagnostic], list[Diagnostic]]:
    """Run the (selected) checkers over an already-loaded project.

    Returns:
        ``(reportable, suppressed)`` — both sorted; ``suppressed`` holds
        the findings silenced by inline noqa comments.

    Raises:
        KeyError: when ``select`` names an unknown code.
    """
    checkers = _selected(select, ignore)
    found: list[Diagnostic] = []
    for checker in checkers:
        for module in project.modules:
            found.extend(checker.check_module(module, project))
        found.extend(checker.check_project(project))

    by_path = {m.path: m for m in project.modules}
    reportable: list[Diagnostic] = []
    suppressed: list[Diagnostic] = []
    for d in sorted(found, key=_sort_key):
        module = by_path.get(d.path)
        if module is not None and not d.context:
            # Stamp the offending source line so the fingerprint (and
            # hence the baseline) survives renames and shifted lines.
            d = replace(d, context=module.line_text(d.line))
        if module is not None and module.suppressed(d.code, d.line):
            suppressed.append(d)
        else:
            reportable.append(d)
    return reportable, suppressed


def run_lint(
    paths: Sequence[Path],
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    baseline_path: Optional[Path] = None,
    root: Optional[Path] = None,
) -> LintResult:
    """Lint ``paths`` and return the full result.

    Args:
        paths: files/directories to lint.
        select: restrict to these checker codes (default: all).
        ignore: drop these checker codes.
        baseline_path: baseline file to grandfather findings against;
            ``None`` means no baselining.
        root: base directory for display paths (defaults to cwd).

    Raises:
        repro.lint.project.LintError: unreadable/unparseable input.
        repro.lint.baseline.BaselineError: malformed baseline file.
        KeyError: unknown ``select`` code.
    """
    project = load_project(paths, root=root)
    reportable, suppressed = check_project(
        project, select=select, ignore=ignore
    )
    baselined: list[Diagnostic] = []
    if baseline_path is not None:
        entries = load_baseline(baseline_path)
        if entries:
            reportable, baselined = split_baselined(reportable, entries)
    return LintResult(
        diagnostics=reportable,
        suppressed=suppressed,
        baselined=baselined,
        files_checked=len(project.modules),
    )
