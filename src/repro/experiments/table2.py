"""Table 2 — Microsoft access mix and Boston University life-spans.

"The Microsoft data provides information on file access patterns while
the Boston University data provides information on file type lifetimes."
Headline observations the checks enforce: 65% of accesses are images
(gif + jpg); images are relatively small and have the longest lifetimes;
jpg files have the shortest median life-span of the measured types.

The Microsoft side synthesizes a proxy access stream from the Table 2
mix and measures it back.  The BU side builds the synthetic population
(:class:`repro.workload.boston.BostonPopulation`), runs the 186-day daily
sampler with the paper's conservative bias, and reports the recovered
per-type ages and life-spans.  The paper's exact estimator formulas are
unspecified, so the life-span comparisons are shape checks (ordering and
ballpark), not digit matches; see EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import ExperimentReport, ShapeCheck, format_table
from repro.trace.sampler import DailySampler
from repro.workload.boston import BU_WINDOW, BostonPopulation
from repro.workload.filetypes import TABLE2_TYPES, FileTypeModel

EXPERIMENT_ID = "table2"
TITLE = "Microsoft access mix and Boston University life-spans"

#: Requests synthesized for the Microsoft-side measurement at scale 1.0
#: ("On an average week day, the Microsoft proxy cache server receives
#: approximately 150,000 requests").
MICROSOFT_REQUESTS = 150_000


def run(scale: float = 1.0, seed: int = 0) -> ExperimentReport:
    """Regenerate Table 2 from the synthetic Microsoft/BU substrates."""
    rng = np.random.default_rng(seed)
    checks: list[ShapeCheck] = []

    # --- Microsoft side: access mix and sizes -----------------------------
    model = FileTypeModel()
    n_requests = max(1000, int(round(MICROSOFT_REQUESTS * scale)))
    drawn_types = model.sample_types(rng, n_requests)
    sizes_by_type: dict[str, list[int]] = {}
    counts: dict[str, int] = {}
    for tname in drawn_types:
        counts[tname] = counts.get(tname, 0) + 1
        sizes_by_type.setdefault(tname, []).append(
            model.sample_size(rng, tname)
        )

    ms_rows = []
    for spec in TABLE2_TYPES:
        share = counts.get(spec.name, 0) / n_requests
        mean_size = (
            float(np.mean(sizes_by_type[spec.name]))
            if spec.name in sizes_by_type
            else 0.0
        )
        ms_rows.append(
            (spec.name, f"{100 * share:.1f}%", f"{100 * spec.access_share:.0f}%",
             round(mean_size), spec.mean_size)
        )
        checks.append(
            ShapeCheck(
                f"microsoft-{spec.name}-access-share",
                abs(share - spec.access_share) <= 0.02,
                f"measured {100 * share:.1f}% vs paper "
                f"{100 * spec.access_share:.0f}%",
            )
        )
    image_share = (
        counts.get("gif", 0) + counts.get("jpg", 0)
    ) / n_requests
    checks.append(
        ShapeCheck(
            "images-are-65pct-of-accesses",
            abs(image_share - 0.65) <= 0.03,
            f"gif+jpg share {100 * image_share:.1f}% (paper: 65%)",
        )
    )
    mean_gif = float(np.mean(sizes_by_type.get("gif", [0])))
    mean_jpg = float(np.mean(sizes_by_type.get("jpg", [0])))
    checks.append(
        ShapeCheck(
            "type-mean-sizes-near-paper",
            abs(mean_gif - 7791) <= 0.2 * 7791
            and abs(mean_jpg - 21608) <= 0.2 * 21608,
            f"gif mean {mean_gif:.0f} B (paper 7791), "
            f"jpg mean {mean_jpg:.0f} B (paper 21608)",
        )
    )

    # --- BU side: daily sampling and life-span recovery --------------------
    # Keep at least ~600 files: per-type medians (especially jpg's ~10%
    # slice) are too noisy below that to test anything meaningful.
    population = BostonPopulation(
        files=max(600, int(round(2500 * scale))), seed=seed + 1
    )
    histories = population.build()
    sampler = DailySampler(histories, BU_WINDOW)
    samples = sampler.run()
    estimates = sampler.estimate_lifespans(samples)
    masking = sampler.masking_loss(samples)

    bu_rows = []
    paper_lifespans = {"gif": 146.0, "html": 146.0, "jpg": 72.0}
    paper_ages = {"gif": 85.0, "html": 50.0, "jpg": 100.0}
    for tname in ("gif", "html", "jpg", "other"):
        est = estimates.get(tname)
        if est is None:
            continue
        bu_rows.append(
            (
                tname,
                est.files,
                est.observed_change_days,
                round(est.avg_age_days, 1),
                paper_ages.get(tname, float("nan")),
                round(est.median_lifespan_days, 1),
                paper_lifespans.get(tname, float("nan")),
            )
        )

    jpg = estimates.get("jpg")
    gif = estimates.get("gif")
    html = estimates.get("html")
    if jpg and gif and html:
        checks.append(
            ShapeCheck(
                "jpg-shortest-median-lifespan",
                jpg.median_lifespan_days < gif.median_lifespan_days
                and jpg.median_lifespan_days < html.median_lifespan_days,
                f"median lifespans: jpg {jpg.median_lifespan_days:.0f}d, "
                f"gif {gif.median_lifespan_days:.0f}d, "
                f"html {html.median_lifespan_days:.0f}d",
            )
        )
        checks.append(
            ShapeCheck(
                "lifespans-in-table2-ballpark",
                abs(gif.median_lifespan_days - 146) <= 60
                and abs(jpg.median_lifespan_days - 72) <= 40,
                f"gif median {gif.median_lifespan_days:.0f}d (paper 146), "
                f"jpg median {jpg.median_lifespan_days:.0f}d (paper 72)",
            )
        )
    total_changes = population.total_changes(histories)
    checks.append(
        ShapeCheck(
            "bu-change-volume-ballpark",
            0.3 * 14000 * scale <= total_changes <= 2.5 * 14000 * max(scale, 0.1),
            f"population changes {total_changes} over 186 days "
            f"(paper: ~14,000 at 2,500 files; scale {scale:g})",
        )
    )
    checks.append(
        ShapeCheck(
            "day-granularity-masks-some-changes",
            0.0 <= masking < 0.9,
            f"daily sampling hides {100 * masking:.1f}% of true changes "
            "(the paper's acknowledged masking effect)",
        )
    )

    rendered = "\n\n".join(
        [
            format_table(
                ("type", "measured share", "paper share",
                 "measured mean size", "paper mean size"),
                ms_rows,
                title="Microsoft proxy access mix (synthesized and "
                      "measured back):",
            ),
            format_table(
                ("type", "files", "change-days", "avg age (d)",
                 "paper age", "median lifespan (d)", "paper lifespan"),
                bu_rows,
                title="Boston University daily-sampling recovery "
                      "(conservative estimators):",
            ),
            f"day-granularity masking: {100 * masking:.1f}% of true changes "
            "collapse into change-days",
        ]
    )
    return ExperimentReport(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rendered=rendered,
        checks=checks,
        data={
            "microsoft": ms_rows,
            "boston": bu_rows,
            "masking_loss": masking,
            "bu_total_changes": total_changes,
        },
    )
