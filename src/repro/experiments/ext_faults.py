"""Extension: fault injection — what lost invalidations actually cost.

The paper names the invalidation protocol's open weakness but never
measures it: the protocol "is not resilient in the face of network
partition or server crashes" (Section 4.0) — a cache that misses a
callback serves the stale copy forever.  This experiment injects
message loss into the invalidation channel (:mod:`repro.faults`) and
sweeps the loss rate against three recovery policies:

* **none** — the paper's protocol as-is; every lost callback is a
  permanently stale copy (until the next miss or eviction refreshes it).
* **retry** — bounded retransmission: each invalidation is retried with
  exponential backoff, so only messages whose *every* attempt is lost
  go undelivered.
* **retry+lease** — retries plus :class:`LeasedInvalidationProtocol`:
  copies additionally expire ``LEASE_HOURS`` after their last
  validation, so even an undelivered invalidation can produce stale
  hits only inside one lease term.

All three policies at a given loss rate share one fault seed, so they
face the *same* per-message loss draws — the comparison is paired.  The
expected shape: staleness is zero without faults, rises unboundedly
with loss for the bare protocol, drops with retries (paid for in
invalidation control bandwidth), and is age-bounded by the lease.
"""

from __future__ import annotations


from repro.analysis.plots import Series, ascii_chart
from repro.analysis.report import ExperimentReport, ShapeCheck, format_table, pct
from repro.core.clock import hours
from repro.core.metrics import INVALIDATION
from repro.core.protocols import InvalidationProtocol, LeasedInvalidationProtocol
from repro.core.protocols.base import ConsistencyProtocol
from repro.core.results import SimulationResult
from repro.core.simulator import SimulatorMode
from repro.experiments.common import worrell_workload
from repro.faults import FaultPlan
from repro.obs import clock as obs_clock
from repro.runtime import RunStats, derive_seed, map_ordered, record, resolve_workers
from repro.verify.oracle import checked_simulate, is_enabled

EXPERIMENT_ID = "ext-faults"
TITLE = "Extension: staleness under faulty invalidation delivery"

#: Invalidation-loss probabilities swept (0.0 is the control column).
LOSS_RATES: tuple[float, ...] = (0.0, 0.2, 0.5, 0.8)
#: Recovery policies compared at every loss rate, in presentation order.
POLICIES: tuple[str, ...] = ("none", "retry", "retry+lease")
#: Retransmissions per invalidation under the retry policies.
RETRIES = 3
#: Exponential-backoff base between retransmissions (seconds).
BACKOFF_SECONDS = 300.0
#: Lease term of the hardened protocol (hours).
LEASE_HOURS = 24.0


def _protocol(policy: str) -> ConsistencyProtocol:
    if policy == "retry+lease":
        return LeasedInvalidationProtocol(hours(LEASE_HOURS))
    return InvalidationProtocol()


def _plan(policy: str, loss: float, plan_seed: int) -> FaultPlan:
    retries = RETRIES if policy in ("retry", "retry+lease") else 0
    return FaultPlan(
        loss_rate=loss, retries=retries, backoff=BACKOFF_SECONDS,
        seed=plan_seed,
    )


def _cell_metrics(result: SimulationResult) -> dict[str, float]:
    counters = result.counters
    return {
        "stale_hit_rate": result.stale_hit_rate,
        "mean_stale_age_hours": counters.mean_stale_age / 3600.0,
        "invalidations_sent": float(counters.server_invalidations_sent),
        "invalidation_control_kb":
            result.bandwidth.control_bytes[INVALIDATION] / 1024.0,
        "total_mb": result.total_megabytes,
    }


def run(scale: float = 1.0, seed: int = 0) -> ExperimentReport:
    """Sweep invalidation-loss rate against the three recovery policies."""
    workload = worrell_workload(scale, seed)
    started = obs_clock.monotonic()
    resolved = resolve_workers(None)

    # Plans are built in the parent so the loss draws are fixed before
    # any fan-out; the seed depends only on the loss index, so the three
    # policies at one loss rate face identical per-attempt draws.
    cells = [
        (loss, policy, _plan(policy, loss, derive_seed(seed, i)))
        for i, loss in enumerate(LOSS_RATES)
        for policy in POLICIES
    ]

    def run_cell(cell: tuple) -> dict[str, float]:
        loss, policy, plan = cell
        result = checked_simulate(
            workload.server(), _protocol(policy), workload.requests,
            SimulatorMode.OPTIMIZED,
            end_time=workload.duration, faults=plan,
        )
        return _cell_metrics(result)

    outcomes = map_ordered(run_cell, cells)
    by_policy: dict[str, dict[float, dict[str, float]]] = {
        policy: {} for policy in POLICIES
    }
    rows = []
    for (loss, policy, _), metrics in zip(cells, outcomes):
        by_policy[policy][loss] = metrics
        rows.append((
            f"{loss:.1f}", policy,
            pct(metrics["stale_hit_rate"]),
            f"{metrics['mean_stale_age_hours']:.2f}",
            round(metrics["invalidations_sent"]),
            f"{metrics['invalidation_control_kb']:.1f}",
            f"{metrics['total_mb']:.3f}",
        ))

    table = format_table(
        ("loss", "policy", "stale rate", "stale age h", "invals sent",
         "inval KB", "total MB"),
        rows,
        title=f"Invalidation under injected loss (retries={RETRIES}, "
              f"backoff={BACKOFF_SECONDS:g}s, lease={LEASE_HOURS:g}h):",
    )
    chart = ascii_chart(
        [
            Series("no recovery", LOSS_RATES,
                   [by_policy["none"][rate]["stale_hit_rate"] * 100
                    for rate in LOSS_RATES], glyph="*"),
            Series(f"retry x{RETRIES}", LOSS_RATES,
                   [by_policy["retry"][rate]["stale_hit_rate"] * 100
                    for rate in LOSS_RATES], glyph="o"),
            Series(f"retry + {LEASE_HOURS:g}h lease", LOSS_RATES,
                   [by_policy["retry+lease"][rate]["stale_hit_rate"] * 100
                    for rate in LOSS_RATES], glyph="+"),
        ],
        title="Stale-hit rate vs invalidation loss rate",
        xlabel="per-message loss probability",
        ylabel="stale hits (percent of requests)",
    )

    stale = {
        policy: [
            by_policy[policy][rate]["stale_hit_rate"] for rate in LOSS_RATES
        ]
        for policy in POLICIES
    }
    lossy = [i for i, rate in enumerate(LOSS_RATES) if rate > 0.0]
    checks = [
        ShapeCheck(
            "no-faults-no-staleness",
            all(stale[policy][0] == 0.0 for policy in POLICIES),
            "stale rate 0.00% for every policy at loss 0.0",
        ),
        ShapeCheck(
            "loss-makes-bare-invalidation-stale",
            all(stale["none"][i] > 0.0 for i in lossy),
            "bare protocol stale at every loss > 0: " + ", ".join(
                pct(stale["none"][i]) for i in lossy
            ),
        ),
        ShapeCheck(
            "retries-recover-lost-invalidations",
            all(stale["retry"][i] <= stale["none"][i] for i in lossy)
            and sum(stale["retry"][i] for i in lossy)
            < sum(stale["none"][i] for i in lossy),
            "retry stale rate at/below no-recovery at every loss, "
            f"summed {pct(sum(stale['retry'][i] for i in lossy))} vs "
            f"{pct(sum(stale['none'][i] for i in lossy))}",
        ),
        ShapeCheck(
            "lease-bounds-stale-age",
            all(
                by_policy["retry+lease"][rate]["mean_stale_age_hours"]
                < LEASE_HOURS
                for rate in LOSS_RATES
            ),
            "mean stale age under lease policy "
            + ", ".join(
                f"{by_policy['retry+lease'][r]['mean_stale_age_hours']:.2f}h"
                for r in LOSS_RATES
            )
            + f" — all under the {LEASE_HOURS:g}h lease",
        ),
        ShapeCheck(
            "retries-cost-control-bandwidth",
            by_policy["retry"][0.5]["invalidation_control_kb"]
            > by_policy["none"][0.5]["invalidation_control_kb"],
            f"at loss 0.5: retry "
            f"{by_policy['retry'][0.5]['invalidation_control_kb']:.1f} KB "
            f"vs none "
            f"{by_policy['none'][0.5]['invalidation_control_kb']:.1f} KB "
            "of invalidation control traffic",
        ),
    ]

    stats = RunStats(
        wall_seconds=obs_clock.monotonic() - started,
        simulated_requests=len(cells) * len(workload.requests),
        workers=resolved,
        grid_points=len(cells),
        peak_grid_size=len(cells),
        verified_runs=len(cells) if is_enabled() else 0,
    )
    record(stats)
    return ExperimentReport(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rendered=f"{table}\n\n{chart}",
        checks=checks,
        data={
            "loss_rates": list(LOSS_RATES),
            # Dict-of-columns layout so --csv / --svg pick it up as a
            # chart: stale rate (%) per recovery policy vs loss rate.
            "stale_rate": {
                "loss": list(LOSS_RATES),
                **{
                    policy: [
                        by_policy[policy][loss]["stale_hit_rate"] * 100.0
                        for loss in LOSS_RATES
                    ]
                    for policy in POLICIES
                },
            },
            "policies": {
                policy: {
                    f"{loss:.1f}": metrics
                    for loss, metrics in by_policy[policy].items()
                }
                for policy in POLICIES
            },
        },
    )
