"""Figure 3 — cache miss and stale-hit rates in the base simulator.

"The increases in update threshold and TTL that induced bandwidth
savings in Figure 2 also induce an increase in the stale hit rate.  The
invalidation protocol provides perfect consistency resulting in a 0%
stale hit rate."
"""

from __future__ import annotations

from repro.analysis.report import ExperimentReport, ShapeCheck, pct
from repro.analysis.sweep import SweepResult
from repro.experiments.common import worrell_sweeps
from repro.experiments.panels import rate_panel, two_panel_report

EXPERIMENT_ID = "figure3"
TITLE = "Cache miss and stale-hit rates in the base simulator"


def _checks(alex: SweepResult, ttl: SweepResult) -> list[ShapeCheck]:
    checks = []
    checks.append(
        ShapeCheck(
            "invalidation-stale-rate-is-zero",
            alex.invalidation["stale_hit_rate"] == 0.0
            and ttl.invalidation["stale_hit_rate"] == 0.0,
            f"invalidation stale rate {pct(alex.invalidation['stale_hit_rate'])}",
        )
    )
    for sweep, label in ((alex, "alex"), (ttl, "ttl")):
        stale = sweep.series("stale_hit_rate")
        grew = stale[-1] > stale[0] and max(stale) == max(stale[len(stale) // 2:])
        checks.append(
            ShapeCheck(
                f"{label}-stale-rate-grows-with-parameter",
                grew,
                f"stale {pct(stale[0])} -> {pct(stale[-1])}",
            )
        )
        miss = sweep.series("miss_rate")
        checks.append(
            ShapeCheck(
                f"{label}-miss-rate-shrinks-with-parameter",
                miss[-1] < miss[0],
                f"miss {pct(miss[0])} -> {pct(miss[-1])}",
            )
        )
    checks.append(
        ShapeCheck(
            "invalidation-miss-rate-near-perfect",
            alex.invalidation["miss_rate"]
            <= min(p.metrics["miss_rate"] for p in alex.points) + 1e-9,
            f"invalidation miss {pct(alex.invalidation['miss_rate'])} vs best "
            f"Alex {pct(min(p.metrics['miss_rate'] for p in alex.points))}",
        )
    )
    # The paper's working example: a ~25% stale rate needs a TTL around
    # 125 hours.  Our calibration differs in absolute request rate, so
    # assert the ballpark, not the digit.
    try:
        at_125 = ttl.point_at(125.0).metrics["stale_hit_rate"]
        detail = f"stale at TTL 125h = {pct(at_125)} (paper: 25%)"
        ok = 0.08 <= at_125 <= 0.50
    except KeyError:
        mid = [p for p in ttl.points if 100 <= p.parameter <= 200]
        at_mid = max(p.metrics["stale_hit_rate"] for p in mid) if mid else 0.0
        detail = f"stale near TTL 100-200h = {pct(at_mid)} (paper: ~25% at 125h)"
        ok = 0.08 <= at_mid <= 0.50
    checks.append(ShapeCheck("ttl-125h-stale-ballpark", ok, detail))
    return checks


def run(scale: float = 1.0, seed: int = 0) -> ExperimentReport:
    """Regenerate Figure 3 at the given workload scale."""
    alex, ttl = worrell_sweeps("base", scale, seed)
    rendered = two_panel_report(alex, ttl, rate_panel)
    return ExperimentReport(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rendered=rendered,
        checks=_checks(alex, ttl),
        data={
            "alex": {
                "threshold_percent": alex.parameters(),
                "miss_rate": alex.series("miss_rate"),
                "stale_hit_rate": alex.series("stale_hit_rate"),
            },
            "ttl": {
                "ttl_hours": ttl.parameters(),
                "miss_rate": ttl.series("miss_rate"),
                "stale_hit_rate": ttl.series("stale_hit_rate"),
            },
            "invalidation_miss_rate": alex.invalidation["miss_rate"],
        },
    )
