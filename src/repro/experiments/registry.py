"""The experiment registry: every table and figure, by id.

Each experiment module exposes ``EXPERIMENT_ID``, ``TITLE``, and
``run(scale, seed) -> ExperimentReport``; this registry maps ids to those
runners for the CLI, the tests, and the benchmarks.
"""

from __future__ import annotations

from typing import Callable

from repro.analysis.report import ExperimentReport
from repro.experiments import (
    ext_dynamic,
    ext_latency,
    ext_scalability,
    ext_worrell,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    table1,
    table2,
)

#: Paper experiments first (in paper order), then the extensions that
#: implement Section 5's future-work directions.
_MODULES = (
    figure1, figure2, figure3, figure4, figure5,
    figure6, figure7, figure8, table1, table2,
    ext_latency, ext_dynamic, ext_scalability, ext_worrell,
)

#: id -> (title, runner)
EXPERIMENTS: dict[str, tuple[str, Callable[..., ExperimentReport]]] = {
    module.EXPERIMENT_ID: (module.TITLE, module.run) for module in _MODULES
}


def all_ids() -> list[str]:
    """Every registered experiment id, in paper order."""
    return list(EXPERIMENTS)


def run_experiment(
    experiment_id: str, scale: float = 1.0, seed: int = 0
) -> ExperimentReport:
    """Run one experiment by id.

    Raises:
        KeyError: for an unknown id (message lists the valid ones).
    """
    try:
        _, runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; valid ids: "
            f"{', '.join(all_ids())}"
        ) from None
    return runner(scale=scale, seed=seed)
