"""The experiment registry: every table and figure, by id.

Each experiment module exposes ``EXPERIMENT_ID``, ``TITLE``, and
``run(scale, seed) -> ExperimentReport``; this registry maps ids to
those runners for the CLI, the tests, and the benchmarks.  Paper
experiments come first, in paper order (``figure1`` … ``table2``),
followed by the extensions that implement Section 5's future-work
directions:

>>> all_ids()[:3]
['figure1', 'figure2', 'figure3']
>>> all_ids()[-1]
'ext-faults'
>>> "figure8" in EXPERIMENTS
True

:func:`run_experiment` is the one entry point everything else goes
through.  It resolves the worker count (``workers`` argument >
:func:`repro.runtime.default_workers` > ``REPRO_WORKERS`` > serial),
scopes it as the default so every sweep the runner triggers fans out
accordingly, and attaches aggregated
:class:`~repro.runtime.RunStats` instrumentation to the returned
report.  Results are bit-identical for every worker count; only the
instrumentation (which is excluded from report equality) differs.  See
``docs/PERFORMANCE.md`` for the execution model.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Optional

from repro.analysis.report import ExperimentReport
from repro.experiments import (
    ext_dynamic,
    ext_faults,
    ext_latency,
    ext_scalability,
    ext_worrell,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    table1,
    table2,
)
from repro.obs import clock as obs_clock
from repro.runtime import RunStats, collecting, default_workers, resolve_workers
from repro.verify.oracle import runs_verified

#: Paper experiments first (in paper order), then the extensions that
#: implement Section 5's future-work directions.
_MODULES = (
    figure1, figure2, figure3, figure4, figure5,
    figure6, figure7, figure8, table1, table2,
    ext_latency, ext_dynamic, ext_scalability, ext_worrell, ext_faults,
)

#: id -> (title, runner)
EXPERIMENTS: dict[str, tuple[str, Callable[..., ExperimentReport]]] = {
    module.EXPERIMENT_ID: (module.TITLE, module.run) for module in _MODULES
}


def all_ids() -> list[str]:
    """Every registered experiment id, in paper order."""
    return list(EXPERIMENTS)


def run_experiment(
    experiment_id: str,
    scale: float = 1.0,
    seed: int = 0,
    workers: Optional[int] = None,
) -> ExperimentReport:
    """Run one experiment by id and attach run instrumentation.

    Args:
        experiment_id: one of :func:`all_ids`.
        scale: workload scale factor (1.0 = paper-calibrated size).
        seed: base RNG seed, forwarded to the experiment's workloads.
        workers: process-pool size for the sweeps the experiment runs;
            None resolves via :func:`repro.runtime.resolve_workers`.

    Returns:
        The experiment's report with ``report.stats`` populated: wall
        time of the whole run, simulated requests summed over the sweeps
        that actually executed (memoized sweeps contribute zero), and
        the resolved worker count.

    Raises:
        KeyError: for an unknown id (message lists the valid ones).
    """
    try:
        _, runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; valid ids: "
            f"{', '.join(all_ids())}"
        ) from None
    resolved = resolve_workers(workers)
    started = obs_clock.monotonic()
    verified_before = runs_verified()
    with default_workers(resolved), collecting() as recorded:
        report = runner(scale=scale, seed=seed)
    stats = RunStats.combine(
        recorded,
        wall_seconds=obs_clock.monotonic() - started,
        workers=resolved,
    )
    # Oracle accounting: serially-executed simulations increment this
    # process's counter; sweeps that fanned out to a pool carry their
    # workers' verification counts back in their own RunStats.
    verified = (runs_verified() - verified_before) + sum(
        r.verified_runs for r in recorded if r.workers > 1
    )
    report.stats = replace(stats, verified_runs=verified)
    return report
