"""Extension: the cost of dynamically generated content (paper Section 5).

"The Microsoft trace logs revealed that 10% of the requests were for
dynamically generated pages.  This represents a tenfold increase from
only six months ago.  As the number of dynamic objects increases it will
become critical to devise ways to cache the actual scripts that generate
dynamic pages."

Dynamic pages defeat every consistency protocol equally: they cannot be
cached at all, so each such request is a full origin round trip and a
full body transfer.  This experiment sweeps the dynamic request fraction
over an HCS-shaped workload and measures how fast the benefits of weak
consistency erode — quantifying why the paper flags the trend as
critical.
"""

from __future__ import annotations

from repro.analysis.plots import Series, ascii_chart
from repro.analysis.report import ExperimentReport, ShapeCheck, format_table, pct
from repro.core.protocols import AlexProtocol
from repro.core.simulator import SimulatorMode
from repro.verify import checked_simulate
from repro.workload.campus import HCS, CampusWorkload

EXPERIMENT_ID = "ext-dynamic"
TITLE = "Extension: impact of the dynamic-content fraction (Section 5 trend)"

FRACTIONS = (0.0, 0.01, 0.05, 0.10, 0.20, 0.30)


def run(scale: float = 1.0, seed: int = 0) -> ExperimentReport:
    """Sweep the dynamic request fraction on an HCS-shaped workload."""
    rows, series = [], {"mb": [], "rtt": [], "ops": [], "stale": []}
    for fraction in FRACTIONS:
        workload = CampusWorkload(
            HCS, seed=seed + 1, request_scale=scale,
            dynamic_fraction=fraction,
        ).build()
        result = checked_simulate(
            workload.server(), AlexProtocol.from_percent(10),
            workload.requests, SimulatorMode.OPTIMIZED,
            end_time=workload.duration,
        )
        rows.append(
            (
                pct(fraction),
                f"{result.total_megabytes:.3f}",
                f"{result.mean_round_trips:.4f}",
                result.server_operations,
                pct(result.stale_hit_rate),
            )
        )
        series["mb"].append(result.total_megabytes)
        series["rtt"].append(result.mean_round_trips)
        series["ops"].append(float(result.server_operations))
        series["stale"].append(result.stale_hit_rate)

    table = format_table(
        ("dynamic fraction", "bandwidth MB", "round trips/request",
         "server ops", "stale rate"),
        rows,
        title="Alex(10%) on HCS as dynamic content grows:",
    )
    xs = [100 * f for f in FRACTIONS]
    chart = ascii_chart(
        [Series("bandwidth (MB)", xs, series["mb"], glyph="*")],
        title="Consistency bandwidth vs dynamic request share",
        xlabel="dynamic requests (percent)",
        ylabel="MB",
    )

    at_zero = series["mb"][0]
    at_ten = series["mb"][FRACTIONS.index(0.10)]
    checks = [
        ShapeCheck(
            "bandwidth-grows-with-dynamic-fraction",
            all(b >= a * 0.999
                for a, b in zip(series["mb"], series["mb"][1:])),
            f"{series['mb'][0]:.3f} MB at 0% -> {series['mb'][-1]:.3f} MB "
            f"at {pct(FRACTIONS[-1])}",
        ),
        ShapeCheck(
            "server-load-grows-with-dynamic-fraction",
            series["ops"][-1] > series["ops"][0],
            f"{series['ops'][0]:.0f} ops at 0% -> {series['ops'][-1]:.0f} "
            f"at {pct(FRACTIONS[-1])}",
        ),
        ShapeCheck(
            "papers-10pct-already-dominates-consistency-traffic",
            at_ten > 2 * at_zero,
            f"at the Microsoft trace's 10% dynamic share, total traffic is "
            f"{at_ten / at_zero:.1f}x the static-only figure — caching the "
            "generating scripts is indeed 'critical'",
        ),
        ShapeCheck(
            "staleness-not-worsened-by-dynamic-content",
            series["stale"][-1] <= series["stale"][0] + 0.001,
            f"stale rate {pct(series['stale'][0])} at 0% vs "
            f"{pct(series['stale'][-1])} at {pct(FRACTIONS[-1])} (dynamic "
            "responses are never stale, only expensive)",
        ),
    ]
    return ExperimentReport(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rendered=f"{table}\n\n{chart}",
        checks=checks,
        data={"fractions": list(FRACTIONS), **series},
    )
