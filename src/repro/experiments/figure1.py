"""Figure 1 — hierarchical vs collapsed caching, the flattening argument.

Section 3.0 justifies collapsing Worrell's hierarchy to a single cache by
walking four scenarios and claiming that wherever the collapse changes
the relative traffic of invalidation vs time-based protocols, "it does so
in a manner that favors invalidation protocols".  This experiment builds
both topologies with the real hierarchy simulator and *measures* the four
scenarios:

  (a) data changed, never accessed again;
  (b) data changed, accessed again before timing out;
  (c) data changed, accessed after timing out — in two variants, all
      leaves accessing vs only cache-1a (the caption's "if some of the
      caches do not later access the data");
  (d) data did not change, timed out and later accessed.

The object body is deliberately small (100 bytes) so that message-count
effects are visible in the byte ratios; with multi-kilobyte bodies every
ratio collapses toward 1 and the bias, though still present in message
counts, disappears from the bandwidth figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.analysis.report import ExperimentReport, ShapeCheck, format_table
from repro.core.clock import days
from repro.core.hierarchy import CacheNode, HierarchySimulation
from repro.core.objects import ModificationSchedule, ObjectHistory, WebObject
from repro.core.protocols import InvalidationProtocol, TTLProtocol
from repro.core.server import OriginServer

EXPERIMENT_ID = "figure1"
TITLE = "Hierarchical vs collapsed caching: the flattening-bias scenarios"

_OBJECT_ID = "/f"
_BODY_SIZE = 100
_TTL = days(5)
_WINDOW = days(10)


@dataclass(frozen=True)
class Scenario:
    """One Figure 1 panel: a change schedule and an access pattern."""

    key: str
    description: str
    change_times: tuple[float, ...]
    #: (time, leaf) accesses; leaf is "1a" or "1b" (mapped to the single
    #: cache in the collapsed topology).
    accesses: tuple[tuple[float, str], ...]


SCENARIOS: tuple[Scenario, ...] = (
    Scenario(
        "a", "data changed, never accessed again",
        change_times=(days(1),), accesses=(),
    ),
    Scenario(
        "b", "data changed, accessed again before timing out",
        change_times=(days(1),),
        accesses=((days(2), "1a"), (days(2.1), "1b")),
    ),
    Scenario(
        "c-all", "data changed, accessed after timing out (all caches)",
        change_times=(days(1),),
        accesses=((days(6), "1a"), (days(6.1), "1b")),
    ),
    Scenario(
        "c-partial",
        "data changed, accessed after timing out (cache-1b never asks)",
        change_times=(days(1),),
        accesses=((days(6), "1a"),),
    ),
    Scenario(
        "d", "data did not change, timed out and later accessed",
        change_times=(), accesses=((days(6), "1a"),),
    ),
)


def _make_server(scenario: Scenario) -> OriginServer:
    created = -days(30)
    obj = WebObject(_OBJECT_ID, size=_BODY_SIZE, created=created)
    return OriginServer(
        [ObjectHistory(obj, ModificationSchedule(created, scenario.change_times))]
    )


def _run_topology(
    scenario: Scenario,
    hierarchical: bool,
    protocol_factory: Callable[[], object],
    invalidations: bool,
) -> HierarchySimulation:
    server = _make_server(scenario)
    if hierarchical:
        root = CacheNode("cache-2", protocol_factory())
        leaf_a = CacheNode("1a", protocol_factory(), parent=root)
        leaf_b = CacheNode("1b", protocol_factory(), parent=root)
        leaves = [leaf_a, leaf_b]
    else:
        root = CacheNode("cache", protocol_factory())
        leaves = [root]
    sim = HierarchySimulation(
        server, root, leaves, deliver_invalidations=invalidations
    )
    sim.preload(at=0.0)
    for t, leaf in scenario.accesses:
        name = leaf if hierarchical else "cache"
        sim.request(name, _OBJECT_ID, t)
    sim.finish(_WINDOW)
    return sim


def _measure(scenario: Scenario) -> dict[str, dict[str, int]]:
    """Total bytes for each (topology, protocol) combination."""
    out: dict[str, dict[str, int]] = {}
    for topo, hierarchical in (("hierarchical", True), ("collapsed", False)):
        time_sim = _run_topology(
            scenario, hierarchical, lambda: TTLProtocol(_TTL), False
        )
        inval_sim = _run_topology(
            scenario, hierarchical, InvalidationProtocol, True
        )
        out[topo] = {
            "time_bytes": time_sim.total_bytes(),
            "inval_bytes": inval_sim.total_bytes(),
            "time_msgs": time_sim.message_count(),
            "inval_msgs": inval_sim.message_count(),
        }
    return out


def _ratio(time_bytes: int, inval_bytes: int) -> Optional[float]:
    return time_bytes / inval_bytes if inval_bytes else None


def run(scale: float = 1.0, seed: int = 0) -> ExperimentReport:
    """Measure the four Figure 1 scenarios in both topologies.

    ``scale`` and ``seed`` are accepted for interface uniformity; the
    scenarios are deterministic micro-benchmarks.
    """
    del scale, seed
    rows = []
    measured: dict[str, dict] = {}
    for scenario in SCENARIOS:
        data = _measure(scenario)
        measured[scenario.key] = data
        for topo in ("hierarchical", "collapsed"):
            d = data[topo]
            ratio = _ratio(d["time_bytes"], d["inval_bytes"])
            rows.append(
                (
                    scenario.key,
                    topo,
                    d["time_bytes"],
                    d["inval_bytes"],
                    "n/a" if ratio is None else f"{100 * ratio:.0f}%",
                    d["time_msgs"],
                    d["inval_msgs"],
                )
            )

    checks: list[ShapeCheck] = []
    for key in ("a", "b"):
        d = measured[key]
        checks.append(
            ShapeCheck(
                f"scenario-{key}-time-based-traffic-is-zero",
                d["hierarchical"]["time_bytes"] == 0
                and d["collapsed"]["time_bytes"] == 0
                and d["hierarchical"]["inval_bytes"] > 0,
                f"time-based 0 B in both topologies; invalidation "
                f"{d['hierarchical']['inval_bytes']} B (hier) / "
                f"{d['collapsed']['inval_bytes']} B (collapsed)",
            )
        )

    call = measured["c-all"]
    r_h = _ratio(call["hierarchical"]["time_bytes"],
                 call["hierarchical"]["inval_bytes"])
    r_c = _ratio(call["collapsed"]["time_bytes"],
                 call["collapsed"]["inval_bytes"])
    checks.append(
        ShapeCheck(
            "scenario-c-all-ratios-agree",
            r_h is not None and r_c is not None and abs(r_h - r_c) <= 0.10,
            f"time/invalidation ratio: hierarchical {100 * r_h:.0f}% vs "
            f"collapsed {100 * r_c:.0f}% (caption: both ~100%)",
        )
    )

    part = measured["c-partial"]
    p_h = _ratio(part["hierarchical"]["time_bytes"],
                 part["hierarchical"]["inval_bytes"])
    p_c = _ratio(part["collapsed"]["time_bytes"],
                 part["collapsed"]["inval_bytes"])
    checks.append(
        ShapeCheck(
            "scenario-c-partial-collapse-biases-against-time-based",
            p_h is not None and p_c is not None and p_c > p_h,
            f"time/invalidation ratio rises from {100 * p_h:.0f}% "
            f"(hierarchical) to {100 * p_c:.0f}% (collapsed)",
        )
    )

    d = measured["d"]
    checks.append(
        ShapeCheck(
            "scenario-d-only-time-based-pays",
            d["hierarchical"]["inval_bytes"] == 0
            and d["collapsed"]["inval_bytes"] == 0
            and d["collapsed"]["time_bytes"] > 0,
            f"invalidation 0 B in both topologies; time-based pays "
            f"{d['collapsed']['time_bytes']} B even in the collapsed model",
        )
    )

    rendered = format_table(
        ("scenario", "topology", "time-based B", "invalidation B",
         "time/inval", "time msgs", "inval msgs"),
        rows,
        title=(
            f"Single {_BODY_SIZE}-byte object, TTL {_TTL / days(1):g} days, "
            f"{_WINDOW / days(1):g}-day window:"
        ),
    )
    return ExperimentReport(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rendered=rendered,
        checks=checks,
        data={"scenarios": measured},
    )
