"""Extension: the latency side of the consistency trade (beyond the paper).

The paper measures bandwidth, staleness, and server load, and mentions
latency only qualitatively: Worrell's mark-don't-fetch invalidation
optimization "increased latency on subsequent accesses, but decreased
bandwidth consumption if the object was not accessed again" (Section
2.0), and the optimized simulator likewise "traded the latency of the
query request for the bandwidth savings" (Section 3.0).

This experiment quantifies that axis with the mean number of synchronous
server round trips per client request:

* **eager invalidation** (pre-optimization: push the new body with every
  notice) — zero client-visible latency, maximum bandwidth;
* **lazy invalidation** (the paper's configuration) — bandwidth saved,
  latency paid on the first access after each change;
* **Alex across its threshold sweep** and the poll-every-request
  degenerate case.
"""

from __future__ import annotations

from repro.analysis.plots import Series, ascii_chart
from repro.analysis.report import ExperimentReport, ShapeCheck, format_table, pct
from repro.analysis.sweep import run_protocol
from repro.core.protocols import (
    AlexProtocol,
    InvalidationProtocol,
    PollEveryRequestProtocol,
)
from repro.core.simulator import SimulatorMode
from repro.experiments.common import campus_sweeps, campus_workloads

EXPERIMENT_ID = "ext-latency"
TITLE = "Extension: client-visible latency (server round trips per request)"


def run(scale: float = 1.0, seed: int = 0) -> ExperimentReport:
    """Measure mean round trips per request across the protocol space."""
    workloads = list(campus_workloads(scale, seed))
    alex_sweep, _ = campus_sweeps(scale, seed)

    lazy = run_protocol(workloads, InvalidationProtocol,
                        SimulatorMode.OPTIMIZED)
    eager = run_protocol(
        workloads, lambda: InvalidationProtocol(eager=True),
        SimulatorMode.OPTIMIZED,
    )
    poll = run_protocol(workloads, PollEveryRequestProtocol,
                        SimulatorMode.OPTIMIZED)
    alex5 = run_protocol(
        workloads, lambda: AlexProtocol.from_percent(5),
        SimulatorMode.OPTIMIZED,
    )

    rows = [
        ("invalidation (eager push)", f"{eager['mean_round_trips']:.4f}",
         f"{eager['total_mb']:.3f}", pct(eager["stale_hit_rate"])),
        ("invalidation (lazy, paper)", f"{lazy['mean_round_trips']:.4f}",
         f"{lazy['total_mb']:.3f}", pct(lazy["stale_hit_rate"])),
        ("alex(5%)", f"{alex5['mean_round_trips']:.4f}",
         f"{alex5['total_mb']:.3f}", pct(alex5["stale_hit_rate"])),
        ("poll-every-request", f"{poll['mean_round_trips']:.4f}",
         f"{poll['total_mb']:.3f}", pct(poll["stale_hit_rate"])),
    ]
    table = format_table(
        ("protocol", "round trips/request", "bandwidth MB", "stale rate"),
        rows,
        title="Latency vs bandwidth vs staleness (campus traces, averaged):",
    )
    chart = ascii_chart(
        [
            Series("alex round trips/request", alex_sweep.parameters(),
                   alex_sweep.series("mean_round_trips"), glyph="*"),
            Series(f"lazy invalidation ({lazy['mean_round_trips']:.4f})",
                   alex_sweep.parameters(),
                   [lazy["mean_round_trips"]] * len(alex_sweep.points),
                   glyph="o"),
        ],
        title="Alex latency across the update-threshold sweep",
        xlabel="Update Threshold (percent)",
        ylabel="round trips per request",
        log_y=True,
        y_floor=1e-4,
    )

    checks = [
        ShapeCheck(
            "eager-invalidation-has-no-client-latency",
            eager["mean_round_trips"] < 0.001,
            f"eager {eager['mean_round_trips']:.5f} round trips/request",
        ),
        ShapeCheck(
            "eager-pays-for-it-in-bandwidth",
            eager["total_mb"] > lazy["total_mb"],
            f"eager {eager['total_mb']:.3f} MB vs lazy "
            f"{lazy['total_mb']:.3f} MB — Worrell's optimization saves "
            f"{eager['total_mb'] - lazy['total_mb']:.3f} MB",
        ),
        ShapeCheck(
            "both-invalidation-variants-perfectly-consistent",
            eager["stale_hit_rate"] == 0.0 and lazy["stale_hit_rate"] == 0.0,
            "stale rate 0.00% for both",
        ),
        ShapeCheck(
            "poll-every-request-pays-a-round-trip-every-time",
            poll["mean_round_trips"] >= 0.999,
            f"poll {poll['mean_round_trips']:.4f} round trips/request",
        ),
        ShapeCheck(
            "alex-latency-falls-with-threshold",
            alex_sweep.series("mean_round_trips")[-1]
            < alex_sweep.series("mean_round_trips")[0] / 10,
            f"{alex_sweep.series('mean_round_trips')[0]:.3f} at 0% -> "
            f"{alex_sweep.series('mean_round_trips')[-1]:.4f} at 100%",
        ),
    ]
    return ExperimentReport(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rendered=f"{table}\n\n{chart}",
        checks=checks,
        data={
            "eager": eager, "lazy": lazy, "poll": poll, "alex5": alex5,
            "alex_sweep_round_trips": alex_sweep.series("mean_round_trips"),
        },
    )
