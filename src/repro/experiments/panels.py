"""Rendering helpers shared by the figure experiments.

Each paper figure has two panels: (a) the Alex protocol against its
update threshold and (b) TTL against its value in hours, each with the
invalidation protocol's parameter-free line as the baseline.  The
helpers here turn a pair of :class:`SweepResult` objects into those
panels as ASCII charts plus a compact data table.
"""

from __future__ import annotations

from repro.analysis.plots import Series, ascii_chart
from repro.analysis.report import format_table
from repro.analysis.sweep import SweepResult

_PANEL_XLABEL = {
    "alex": "Update Threshold (percent)",
    "ttl": "TTL value (hours)",
}
_PANEL_TITLE = {
    "alex": "(a) Alex Cache Consistency Protocol",
    "ttl": "(b) Time to Live Fields",
}


def _flat_baseline(sweep: SweepResult, key: str) -> Series:
    xs = sweep.parameters()
    level = sweep.invalidation[key]
    return Series(
        label=f"invalidation ({level:.3g})",
        xs=xs,
        ys=[level] * len(xs),
        glyph="o",
    )


def bandwidth_panel(sweep: SweepResult, label: str) -> str:
    """One bandwidth panel: protocol MB vs invalidation MB, log-y."""
    return ascii_chart(
        [
            Series(f"{label}: bandwidth (MB)", sweep.parameters(),
                   sweep.series("total_mb"), glyph="*"),
            _flat_baseline(sweep, "total_mb"),
        ],
        title=_PANEL_TITLE[sweep.family],
        xlabel=_PANEL_XLABEL[sweep.family],
        ylabel="MB exchanged",
        log_y=True,
    )


def rate_panel(sweep: SweepResult, label: str) -> str:
    """One rates panel: miss and stale-hit percentages (linear y)."""
    to_pct = lambda ys: [100.0 * y for y in ys]  # noqa: E731
    inval_miss = 100.0 * sweep.invalidation["miss_rate"]
    xs = sweep.parameters()
    return ascii_chart(
        [
            Series(f"invalidation misses ({inval_miss:.2f}%)", xs,
                   [inval_miss] * len(xs), glyph="o"),
            Series(f"{label} misses", xs, to_pct(sweep.series("miss_rate")),
                   glyph="*"),
            Series(f"{label} stale hits", xs,
                   to_pct(sweep.series("stale_hit_rate")), glyph="+"),
        ],
        title=_PANEL_TITLE[sweep.family],
        xlabel=_PANEL_XLABEL[sweep.family],
        ylabel="percent of requests",
        log_y=False,
    )


def server_load_panel(sweep: SweepResult, label: str) -> str:
    """One server-load panel: operations vs invalidation, log-y."""
    return ascii_chart(
        [
            Series(f"{label}: server load", sweep.parameters(),
                   sweep.series("server_operations"), glyph="*"),
            _flat_baseline(sweep, "server_operations"),
        ],
        title=_PANEL_TITLE[sweep.family],
        xlabel=_PANEL_XLABEL[sweep.family],
        ylabel="server operations",
        log_y=True,
    )


def sweep_table(sweep: SweepResult, parameter_name: str) -> str:
    """Compact metric table across the sweep, plus the baseline row."""
    rows = [
        (
            point.parameter,
            point.metrics["total_mb"],
            100.0 * point.metrics["miss_rate"],
            100.0 * point.metrics["stale_hit_rate"],
            int(point.metrics["server_operations"]),
        )
        for point in sweep.points
    ]
    rows.append(
        (
            "inval",
            sweep.invalidation["total_mb"],
            100.0 * sweep.invalidation["miss_rate"],
            100.0 * sweep.invalidation["stale_hit_rate"],
            int(sweep.invalidation["server_operations"]),
        )
    )
    return format_table(
        (parameter_name, "MB", "miss %", "stale %", "server ops"),
        rows,
    )


def two_panel_report(
    alex_sweep: SweepResult,
    ttl_sweep: SweepResult,
    panel_fn,
) -> str:
    """Render both panels and both data tables."""
    return "\n\n".join(
        [
            panel_fn(alex_sweep, "Alex"),
            sweep_table(alex_sweep, "threshold %"),
            panel_fn(ttl_sweep, "TTL"),
            sweep_table(ttl_sweep, "TTL hours"),
        ]
    )
