"""Figure 5 — cache miss rates in the optimized simulator.

"The cache miss rates improve dramatically from Figure 3 since
invalidated files are left in the cache.  All three protocols show miss
rates that are indistinguishable from the near perfect miss rate of the
invalidation protocol.  However, the stale hit rate remains unacceptably
high."
"""

from __future__ import annotations

from repro.analysis.report import ExperimentReport, ShapeCheck, pct
from repro.analysis.sweep import SweepResult
from repro.experiments.common import worrell_sweeps
from repro.experiments.panels import rate_panel, two_panel_report

EXPERIMENT_ID = "figure5"
TITLE = "Cache miss rates in the optimized simulator"


def _checks(
    alex: SweepResult,
    ttl: SweepResult,
    base_alex: SweepResult,
    base_ttl: SweepResult,
) -> list[ShapeCheck]:
    checks = []
    inval_miss = alex.invalidation["miss_rate"]
    for sweep, label in ((alex, "alex"), (ttl, "ttl")):
        # One-sided: with conditional retrieval, the weak protocols never
        # transfer meaningfully *more* bodies than invalidation; they may
        # transfer fewer, because "neither Alex nor TTL will ever transmit
        # more file information than the invalidation protocol, but could
        # transmit less if stale files are ever returned" (Section 4.1).
        excess = max(
            p.metrics["miss_rate"] - inval_miss for p in sweep.points
        )
        checks.append(
            ShapeCheck(
                f"{label}-miss-rate-never-worse-than-invalidation",
                excess <= 0.05,
                f"max {label} miss excess over invalidation {pct(max(excess, 0))} "
                f"(invalidation {pct(inval_miss)})",
            )
        )

    # Misses improve versus the base simulator...
    for opt, base, label in ((alex, base_alex, "alex"), (ttl, base_ttl, "ttl")):
        first = base.points[0] if base.points[0].parameter > 0 else base.points[1]
        improved = (
            opt.point_at(first.parameter).metrics["miss_rate"]
            < first.metrics["miss_rate"]
        )
        checks.append(
            ShapeCheck(
                f"{label}-misses-improve-over-base-simulator",
                improved,
                f"{label}({first.parameter:g}) miss: base "
                f"{pct(first.metrics['miss_rate'])} -> optimized "
                f"{pct(opt.point_at(first.parameter).metrics['miss_rate'])}",
            )
        )

    # ...but the stale hit rate is unchanged ("Unfortunately, the stale
    # cache hit rate is unchanged").  The freshness windows are identical
    # in both modes, so the rates should agree closely point-for-point.
    for opt, base, label in ((alex, base_alex, "alex"), (ttl, base_ttl, "ttl")):
        worst = max(
            abs(o.metrics["stale_hit_rate"] - b.metrics["stale_hit_rate"])
            for o, b in zip(opt.points, base.points)
        )
        checks.append(
            ShapeCheck(
                f"{label}-stale-rate-unchanged-from-base",
                worst <= 0.05,
                f"max per-point stale-rate delta {pct(worst)}",
            )
        )
    return checks


def run(scale: float = 1.0, seed: int = 0) -> ExperimentReport:
    """Regenerate Figure 5 at the given workload scale."""
    alex, ttl = worrell_sweeps("optimized", scale, seed)
    base_alex, base_ttl = worrell_sweeps("base", scale, seed)
    rendered = two_panel_report(alex, ttl, rate_panel)
    return ExperimentReport(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rendered=rendered,
        checks=_checks(alex, ttl, base_alex, base_ttl),
        data={
            "alex": {
                "threshold_percent": alex.parameters(),
                "miss_rate": alex.series("miss_rate"),
                "stale_hit_rate": alex.series("stale_hit_rate"),
            },
            "ttl": {
                "ttl_hours": ttl.parameters(),
                "miss_rate": ttl.series("miss_rate"),
                "stale_hit_rate": ttl.series("stale_hit_rate"),
            },
            "invalidation_miss_rate": alex.invalidation["miss_rate"],
        },
    )
