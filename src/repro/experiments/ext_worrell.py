"""Extension: reproducing Worrell's thesis result (Section 2.0).

"[Worrell] showed that the bandwidth savings for invalidation protocols
and TTL fields could be comparable if the TTL were set to approximately
seven days.  Unfortunately, with a TTL of 7 days, 20% of the requests
returned stale data."

Worrell's workload is exactly what our base simulator models (flat
lifetime distribution, uniform requests, unconditional refetch on
expiry), so his headline numbers are one more published anchor to
measure against: the TTL value at which TTL's bandwidth meets the
invalidation protocol's, and the stale rate paid there.  Seven days is
168 hours; 20% staleness is his price.
"""

from __future__ import annotations

from repro.analysis.report import ExperimentReport, ShapeCheck, pct
from repro.analysis.sweep import crossover_parameter
from repro.experiments.common import worrell_sweeps
from repro.experiments.panels import sweep_table

EXPERIMENT_ID = "ext-worrell"
TITLE = "Extension: Worrell's TTL-vs-invalidation break-even (Section 2.0)"


def run(scale: float = 1.0, seed: int = 0) -> ExperimentReport:
    """Locate the TTL/invalidation bandwidth break-even and its price."""
    _, ttl = worrell_sweeps("base", scale, seed)

    crossover = crossover_parameter(ttl, "total_mb")
    stale_at_crossover = (
        ttl.point_at(crossover).metrics["stale_hit_rate"]
        if crossover is not None else None
    )
    inval_mb = ttl.invalidation["total_mb"]

    lines = [
        sweep_table(ttl, "TTL hours"),
        "",
        (
            f"bandwidth break-even: TTL = {crossover:g} hours "
            f"(~{crossover / 24:.1f} days; Worrell: ~7 days / 168 h)"
            if crossover is not None
            else "bandwidth break-even: not reached within 0-500 h"
        ),
    ]
    if stale_at_crossover is not None:
        lines.append(
            f"stale rate at break-even: {pct(stale_at_crossover)} "
            "(Worrell: 20%)"
        )

    checks = [
        ShapeCheck(
            "break-even-exists-within-the-sweep",
            crossover is not None,
            f"TTL bandwidth meets invalidation's {inval_mb:.1f} MB at "
            f"{crossover if crossover is not None else 'no swept'} hours",
        ),
    ]
    if crossover is not None:
        checks.append(
            ShapeCheck(
                "break-even-near-seven-days",
                72 <= crossover <= 350,
                f"measured {crossover:g} h (~{crossover / 24:.1f} days) vs "
                "Worrell's ~168 h",
            )
        )
        checks.append(
            ShapeCheck(
                "staleness-price-at-break-even",
                stale_at_crossover is not None
                and 0.10 <= stale_at_crossover <= 0.50,
                f"measured {pct(stale_at_crossover)} vs Worrell's 20% — "
                "the unacceptable price that motivated the paper",
            )
        )
        before = [
            p for p in ttl.points if 0 < p.parameter < crossover
        ]
        checks.append(
            ShapeCheck(
                "invalidation-wins-below-the-break-even",
                all(p.metrics["total_mb"] > inval_mb for p in before),
                f"all {len(before)} swept TTLs below {crossover:g} h cost "
                "more bandwidth than invalidation",
            )
        )

    return ExperimentReport(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rendered="\n".join(lines),
        checks=checks,
        data={
            "crossover_hours": crossover,
            "stale_at_crossover": stale_at_crossover,
            "invalidation_mb": inval_mb,
            "ttl": {
                "ttl_hours": ttl.parameters(),
                "total_mb": ttl.series("total_mb"),
                "stale_hit_rate": ttl.series("stale_hit_rate"),
            },
        },
    )
