"""Experiments: one module per table/figure of the paper's evaluation.

Run them from the command line::

    python -m repro.experiments all
    python -m repro.experiments figure6 --scale 0.25

or programmatically::

    from repro.experiments import run_experiment
    report = run_experiment("figure8", scale=0.25)
    print(report.render())
"""

__all__ = ["run_experiment", "all_ids"]


def __getattr__(name: str):
    # Lazy: the registry imports every experiment module; keep
    # `import repro.experiments.figure2` cheap and cycle-free.
    if name in __all__:
        from repro.experiments import registry

        return getattr(registry, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
