"""Command-line entry point: regenerate any table or figure.

Usage::

    python -m repro.experiments figure6            # one experiment
    python -m repro.experiments all                # everything
    python -m repro.experiments figure2 --scale 0.2 --seed 7
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.registry import all_ids, run_experiment


def main(argv: list[str] | None = None) -> int:
    """Run the requested experiments and print their reports.

    Returns a non-zero exit status when any shape check fails.
    """
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the tables and figures of Gwertzman & Seltzer, "
            "'World-Wide Web Cache Consistency' (USENIX 1996)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=[*all_ids(), "all"],
        help="experiment id, or 'all'",
    )
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="workload scale factor (1.0 = paper-calibrated size)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="base RNG seed"
    )
    parser.add_argument(
        "--csv", type=str, default=None, metavar="DIR",
        help="also dump each experiment's data series/tables as CSV "
             "files into DIR",
    )
    parser.add_argument(
        "--svg", type=str, default=None, metavar="DIR",
        help="also render each experiment's series as SVG charts in DIR",
    )
    args = parser.parse_args(argv)

    ids = all_ids() if args.experiment == "all" else [args.experiment]
    failures = 0
    for experiment_id in ids:
        started = time.perf_counter()
        report = run_experiment(experiment_id, scale=args.scale, seed=args.seed)
        elapsed = time.perf_counter() - started
        print(report.render())
        print(f"  ({elapsed:.1f}s)")
        if args.csv:
            from repro.analysis.export import dump_experiment_data

            written = dump_experiment_data(
                report.data, args.csv, experiment_id
            )
            print(f"  csv: {', '.join(str(p) for p in written)}")
        if args.svg:
            from repro.analysis.svg import dump_experiment_svg

            rendered_svgs = dump_experiment_svg(
                report.data, args.svg, experiment_id
            )
            if rendered_svgs:
                print(
                    f"  svg: {', '.join(str(p) for p in rendered_svgs)}"
                )
        print()
        if not report.all_passed:
            failures += 1
    if failures:
        print(f"{failures} experiment(s) had failing shape checks",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
