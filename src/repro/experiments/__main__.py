"""Command-line entry point: regenerate any table or figure.

Usage::

    python -m repro.experiments figure6            # one experiment
    python -m repro.experiments all                # everything, serially
    python -m repro.experiments all --workers 4    # everything, in parallel
    python -m repro.experiments figure2 --scale 0.2 --seed 7

Parallelism (see ``docs/PERFORMANCE.md``): ``--workers N`` (default: the
``REPRO_WORKERS`` environment variable, else 1) fans work out across
processes on two axes.  A single experiment parallelizes across its
parameter-grid points.  ``all`` first warms the sweep caches shared by
several figures with grid-level parallelism, then fans the experiment
ids themselves out across the pool — the forked workers inherit the
warmed caches, so nothing is computed twice.  Output is byte-identical
for every worker count; reports print in registry order regardless of
completion order.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.report import ExperimentReport
from repro.experiments.common import warm_shared_sweeps
from repro.experiments.registry import all_ids, run_experiment
from repro.obs import registry as obs_registry
from repro.obs import trace as obs_trace
from repro.runtime import (
    RunStats,
    collecting,
    default_workers,
    map_ordered,
    resolve_workers,
)


def _run_all_parallel(
    ids: list[str], scale: float, seed: int, workers: int
) -> tuple[list[ExperimentReport], list[RunStats]]:
    """Run many experiments across a process pool (warm caches first).

    Returns the reports plus the warm-phase sweep instrumentation —
    the warmed sweeps are served from cache inside the workers, so
    their stats (including oracle verification counts) only exist here.
    """
    with default_workers(workers), collecting() as warm_stats:
        warm_shared_sweeps(scale=scale, seed=seed)
    # Each forked worker inherits the warmed sweep caches; within a
    # worker the sweeps that remain run serially (workers=1) — the pool
    # is already saturated at the experiment level.
    reports = map_ordered(
        lambda experiment_id: run_experiment(
            experiment_id, scale=scale, seed=seed, workers=1
        ),
        ids,
        workers=workers,
    )
    return reports, warm_stats


def main(argv: list[str] | None = None) -> int:
    """Run the requested experiments and print their reports.

    Returns a non-zero exit status when any shape check fails.
    """
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the tables and figures of Gwertzman & Seltzer, "
            "'World-Wide Web Cache Consistency' (USENIX 1996)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=[*all_ids(), "all"],
        help="experiment id, or 'all'",
    )
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="workload scale factor (1.0 = paper-calibrated size)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="base RNG seed"
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="process-pool size for sweeps and the 'all' fan-out "
             "(default: $REPRO_WORKERS, else 1 = serial; results are "
             "byte-identical either way — see docs/PERFORMANCE.md)",
    )
    parser.add_argument(
        "--csv", type=str, default=None, metavar="DIR",
        help="also dump each experiment's data series/tables as CSV "
             "files into DIR",
    )
    parser.add_argument(
        "--svg", type=str, default=None, metavar="DIR",
        help="also render each experiment's series as SVG charts in DIR",
    )
    parser.add_argument(
        "--trace", dest="trace_out", type=Path, default=None, metavar="PATH",
        help="write a structured JSONL trace (simulator events + engine "
             "spans, schema repro.trace/1) to PATH — see "
             "docs/OBSERVABILITY.md",
    )
    parser.add_argument(
        "--metrics", dest="metrics_out", type=Path, default=None,
        metavar="PATH",
        help="write the merged metrics registry (schema repro.metrics/1) "
             "as JSON to PATH; render with 'repro metrics'",
    )
    parser.add_argument(
        "--verify", action="store_true",
        help="replay every simulation through the repro.verify "
             "consistency oracle; any counter, bandwidth-ledger, or "
             "event divergence aborts with a diff (see docs/PROTOCOLS.md "
             "'Invariants & verification')",
    )
    parser.add_argument(
        "--engine", default=None, choices=["fast", "reference"],
        help="simulator engine: 'fast' (batched repro.fastpath kernel, "
             "byte-identical output, automatic reference fallback) or "
             "'reference'; default: $REPRO_ENGINE, else fast — see "
             "docs/FASTPATH.md",
    )
    args = parser.parse_args(argv)

    if args.engine:
        # Before anything forks: set_engine mirrors the choice into
        # REPRO_ENGINE, so pool workers resolve the same engine.
        from repro.fastpath import set_engine

        set_engine(args.engine)

    if args.verify:
        # Enable before anything forks: pool workers inherit the flag
        # and oracle-check the runs they execute.
        from repro.verify import set_enabled

        set_enabled(True)

    registry = (
        obs_registry.MetricsRegistry()
        if args.metrics_out is not None else None
    )
    sink = obs_trace.TraceSink() if args.trace_out is not None else None
    previous_registry = (
        obs_registry.install(registry) if registry is not None else None
    )
    previous_sink = obs_trace.install(sink) if sink is not None else None
    try:
        ids = all_ids() if args.experiment == "all" else [args.experiment]
        workers = resolve_workers(args.workers)
        warm_stats: list = []
        if len(ids) > 1 and workers > 1:
            reports, warm_stats = _run_all_parallel(
                ids, args.scale, args.seed, workers
            )
        else:
            reports = (
                run_experiment(i, scale=args.scale, seed=args.seed,
                               workers=workers)
                for i in ids
            )

        failures = 0
        printed: list[ExperimentReport] = []
        for experiment_id, report in zip(ids, reports):
            printed.append(report)
            print(report.render())
            if report.stats is not None:
                print(f"  ({report.stats.render()})")
            if args.csv:
                from repro.analysis.export import dump_experiment_data

                written = dump_experiment_data(
                    report.data, args.csv, experiment_id
                )
                print(f"  csv: {', '.join(str(p) for p in written)}")
            if args.svg:
                from repro.analysis.svg import dump_experiment_svg

                rendered_svgs = dump_experiment_svg(
                    report.data, args.svg, experiment_id
                )
                if rendered_svgs:
                    print(
                        f"  svg: {', '.join(str(p) for p in rendered_svgs)}"
                    )
            print()
            if not report.all_passed:
                failures += 1
        if args.verify:
            verified = sum(
                r.stats.verified_runs for r in printed if r.stats is not None
            ) + sum(s.verified_runs for s in warm_stats)
            print(f"oracle: {verified} run(s) verified, zero divergence")
    finally:
        # Flush observability outputs even when a run fails — a trace
        # of the failing run is exactly what the flags are for.
        if sink is not None:
            obs_trace.install(previous_sink)
            lines = obs_trace.write_jsonl(sink, args.trace_out)
            print(f"trace: wrote {lines} line(s) to {args.trace_out}",
                  file=sys.stderr)
        if registry is not None:
            obs_registry.install(previous_registry)
            args.metrics_out.write_text(
                json.dumps(registry.as_dict(), indent=2, sort_keys=True)
                + "\n",
                encoding="utf-8",
            )
            print(f"metrics: wrote {args.metrics_out}", file=sys.stderr)
    if failures:
        print(f"{failures} experiment(s) had failing shape checks",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
