"""Figure 6 — bandwidth with the modified-workload (trace-driven) simulator.

"These results depict the averages of the FAS, HCS, and DAS traces. ...
Both Alex and TTL use less bandwidth than the Invalidation Protocol for
nearly all parameter settings."  The conclusions sharpen this: Alex "can
be tuned to reduce network bandwidth consumption by an order of
magnitude over an invalidation protocol".
"""

from __future__ import annotations

from repro.analysis.report import ExperimentReport, ShapeCheck
from repro.analysis.sweep import SweepResult
from repro.experiments.common import campus_sweeps
from repro.experiments.panels import bandwidth_panel, two_panel_report

EXPERIMENT_ID = "figure6"
TITLE = "Bandwidth with the modified-workload simulator (campus traces)"


def _checks(alex: SweepResult, ttl: SweepResult) -> list[ShapeCheck]:
    checks = []
    for sweep, label in ((alex, "alex"), (ttl, "ttl")):
        inval = sweep.invalidation["total_mb"]
        nonzero = [p for p in sweep.points if p.parameter > 0]
        below = sum(1 for p in nonzero if p.metrics["total_mb"] < inval)
        frac = below / len(nonzero) if nonzero else 0.0
        checks.append(
            ShapeCheck(
                f"{label}-below-invalidation-nearly-everywhere",
                frac >= 0.8,
                f"{frac * 100:.0f}% of settings use less than invalidation's "
                f"{inval:.2f} MB",
            )
        )
    best_alex = min(alex.series("total_mb"))
    inval_mb = alex.invalidation["total_mb"]
    checks.append(
        ShapeCheck(
            "alex-order-of-magnitude-savings-available",
            best_alex <= inval_mb / 8.0,
            f"best Alex {best_alex:.3f} MB vs invalidation {inval_mb:.2f} MB "
            f"({inval_mb / best_alex:.1f}x)",
        )
    )
    alex_mb = alex.series("total_mb")
    checks.append(
        ShapeCheck(
            "alex-bandwidth-decreases-with-threshold",
            all(b <= a * 1.10 for a, b in zip(alex_mb, alex_mb[1:])),
            f"MB from {alex_mb[0]:.2f} at 0% to {alex_mb[-1]:.3f} at 100%",
        )
    )
    return checks


def run(scale: float = 1.0, seed: int = 0) -> ExperimentReport:
    """Regenerate Figure 6 at the given workload scale."""
    alex, ttl = campus_sweeps(scale, seed)
    rendered = two_panel_report(alex, ttl, bandwidth_panel)
    return ExperimentReport(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rendered=rendered,
        checks=_checks(alex, ttl),
        data={
            "alex": {
                "threshold_percent": alex.parameters(),
                "total_mb": alex.series("total_mb"),
            },
            "ttl": {
                "ttl_hours": ttl.parameters(),
                "total_mb": ttl.series("total_mb"),
            },
            "invalidation_mb": alex.invalidation["total_mb"],
        },
    )
