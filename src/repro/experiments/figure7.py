"""Figure 7 — miss and stale rates with the modified-workload simulator.

"Both protocols provide extremely low stale data rates using
trace-driven simulation.  The cache miss rates for the invalidation
protocol, Alex, and TTL are all less than 0.04%."  And from Section 4.0:
"an update threshold as low as 5% returns stale data less than 1% of the
time".
"""

from __future__ import annotations

from repro.analysis.report import ExperimentReport, ShapeCheck, pct
from repro.analysis.sweep import SweepResult
from repro.experiments.common import campus_sweeps
from repro.experiments.panels import rate_panel, two_panel_report

EXPERIMENT_ID = "figure7"
TITLE = "Miss and stale rates with the modified-workload simulator"

#: Our miss rates will not hit the paper's 0.04% digit (request volumes
#: differ); "near zero" here means below half a percent at full scale.
#: Body-transfer counts are nearly request-volume-invariant (they track
#: the change schedule), so at reduced scale the ceiling relaxes by 1/scale.
MISS_RATE_CEILING = 0.005
#: The conclusions' acceptability bar for stale hits.
STALE_RATE_CEILING = 0.05


def _checks(alex: SweepResult, ttl: SweepResult,
            scale: float) -> list[ShapeCheck]:
    checks = []
    ceiling = MISS_RATE_CEILING / min(max(scale, 1e-9), 1.0)
    inval_miss = alex.invalidation["miss_rate"]
    for sweep, label in ((alex, "alex"), (ttl, "ttl")):
        worst_miss = max(sweep.series("miss_rate"))
        checks.append(
            ShapeCheck(
                f"{label}-miss-rate-near-zero",
                worst_miss <= ceiling and inval_miss <= ceiling,
                f"worst {label} miss {pct(worst_miss)}, invalidation "
                f"{pct(inval_miss)} (paper: all < 0.04%)",
            )
        )
        worst_stale = max(sweep.series("stale_hit_rate"))
        checks.append(
            ShapeCheck(
                f"{label}-stale-rate-low-across-sweep",
                worst_stale <= STALE_RATE_CEILING * 1.5,
                f"worst {label} stale {pct(worst_stale)} "
                f"(paper: extremely low throughout)",
            )
        )
    low = [p for p in alex.points if 0 < p.parameter <= 5]
    if low:
        stale_at_5 = max(p.metrics["stale_hit_rate"] for p in low)
        checks.append(
            ShapeCheck(
                "alex-5pct-threshold-under-1pct-stale",
                stale_at_5 < 0.01,
                f"stale at threshold <=5%: {pct(stale_at_5)} (paper: <1%)",
            )
        )
    checks.append(
        ShapeCheck(
            "invalidation-stale-rate-is-zero",
            alex.invalidation["stale_hit_rate"] == 0.0,
            f"invalidation stale {pct(alex.invalidation['stale_hit_rate'])}",
        )
    )
    return checks


def run(scale: float = 1.0, seed: int = 0) -> ExperimentReport:
    """Regenerate Figure 7 at the given workload scale."""
    alex, ttl = campus_sweeps(scale, seed)
    rendered = two_panel_report(alex, ttl, rate_panel)
    return ExperimentReport(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rendered=rendered,
        checks=_checks(alex, ttl, scale),
        data={
            "alex": {
                "threshold_percent": alex.parameters(),
                "miss_rate": alex.series("miss_rate"),
                "stale_hit_rate": alex.series("stale_hit_rate"),
            },
            "ttl": {
                "ttl_hours": ttl.parameters(),
                "miss_rate": ttl.series("miss_rate"),
                "stale_hit_rate": ttl.series("stale_hit_rate"),
            },
            "invalidation_miss_rate": alex.invalidation["miss_rate"],
        },
    )
