"""Shared machinery for the experiment modules.

Figures 2 and 3 are two views of one sweep (base-simulator bandwidth and
rates); Figures 4 and 5 share the optimized-simulator sweep; Figures 6,
7, and 8 share the campus-trace sweep.  The builders here are memoized so
running several figures in one process performs each sweep once.

The ``scale`` parameter shrinks workloads proportionally (files and
requests together for the Worrell workload; requests for the fixed-size
campus populations) so tests and benchmarks can run the same experiments
in seconds.  ``scale=1.0`` is the paper-calibrated size.
"""

from __future__ import annotations

from functools import lru_cache

from repro.analysis.sweep import (
    ALEX_THRESHOLDS_PERCENT,
    TTL_HOURS,
    SweepResult,
    sweep_alex,
    sweep_ttl,
)
from repro.core.simulator import SimulatorMode
from repro.workload.base import Workload
from repro.workload.campus import build_campus_workloads
from repro.workload.worrell import WorrellWorkload

#: Paper-calibrated Worrell run: 2085 files over 56 days.
WORRELL_FILES = 2085
#: Request volume for the Worrell runs at scale 1.0.  The paper does not
#: state Worrell's request count; 100k over 56 days (~0.86 requests per
#: file per day) puts bandwidth in the figures' MB range.
WORRELL_REQUESTS = 100_000


def _sparse(values: tuple, step: int) -> tuple:
    """Thin a parameter grid, always keeping the first and last points.

    The thinned grid is returned in ascending order: when the stride
    lands short of the final value, that anchor is *inserted in order*
    rather than appended (a plain append could emit an out-of-order tail
    point for grids whose last stride point exceeds the final value,
    breaking the sorted-grid assumption of crossover detection and the
    figures' x axes).

    >>> _sparse((0, 25, 50, 75, 100), 2)
    (0, 50, 100)
    >>> _sparse((0, 20, 40, 30), 2)   # stride point 40 > final value 30
    (0, 30, 40)
    """
    if step <= 1:
        return values
    kept = set(values[::step])
    kept.add(values[-1])
    return tuple(sorted(kept))


def sweep_grids(scale: float) -> tuple[tuple, tuple]:
    """(alex thresholds, ttl hours) grids; thinned at reduced scale."""
    if scale >= 0.99:
        return ALEX_THRESHOLDS_PERCENT, TTL_HOURS
    step = 2 if scale >= 0.25 else 4
    return _sparse(ALEX_THRESHOLDS_PERCENT, step), _sparse(TTL_HOURS, step)


@lru_cache(maxsize=8)
def worrell_workload(scale: float = 1.0, seed: int = 0) -> Workload:
    """The Worrell workload at the given scale (memoized)."""
    return WorrellWorkload(
        files=max(10, int(round(WORRELL_FILES * scale))),
        requests=max(100, int(round(WORRELL_REQUESTS * scale))),
        seed=seed,
    ).build()


@lru_cache(maxsize=8)
def campus_workloads(scale: float = 1.0, seed: int = 0) -> tuple[Workload, ...]:
    """The three campus workloads (DAS, FAS, HCS), memoized."""
    built = build_campus_workloads(seed=seed, request_scale=scale)
    return tuple(built.values())


@lru_cache(maxsize=8)
def worrell_sweeps(
    mode_value: str, scale: float = 1.0, seed: int = 0
) -> tuple[SweepResult, SweepResult]:
    """(alex, ttl) sweeps over the Worrell workload in the given mode."""
    mode = SimulatorMode(mode_value)
    workloads = [worrell_workload(scale, seed)]
    alex_grid, ttl_grid = sweep_grids(scale)
    return (
        sweep_alex(workloads, mode, thresholds_percent=alex_grid),
        sweep_ttl(workloads, mode, ttl_hours=ttl_grid),
    )


@lru_cache(maxsize=8)
def campus_sweeps(
    scale: float = 1.0, seed: int = 0
) -> tuple[SweepResult, SweepResult]:
    """(alex, ttl) sweeps averaged over the campus traces (optimized mode).

    This is the configuration behind Figures 6-8: "These results depict
    the averages of the FAS, HCS, and DAS traces."
    """
    workloads = list(campus_workloads(scale, seed))
    alex_grid, ttl_grid = sweep_grids(scale)
    return (
        sweep_alex(workloads, SimulatorMode.OPTIMIZED,
                   thresholds_percent=alex_grid),
        sweep_ttl(workloads, SimulatorMode.OPTIMIZED, ttl_hours=ttl_grid),
    )


def warm_shared_sweeps(scale: float = 1.0, seed: int = 0) -> None:
    """Pre-compute the sweep groups shared by several experiments.

    Figures 2/3 share the base Worrell sweep, Figures 4/5 the optimized
    Worrell sweep, and Figures 6/7/8 (plus ``ext-latency``) the campus
    sweep.  ``python -m repro.experiments all --workers N`` calls this
    *before* fanning experiments out across processes: the shared sweeps
    run once here with grid-level parallelism, and the forked experiment
    workers inherit the warmed memo caches instead of each recomputing
    them.  Serial runs get the same effect implicitly from the
    ``lru_cache`` memoization.
    """
    worrell_sweeps("base", scale, seed)
    worrell_sweeps("optimized", scale, seed)
    campus_sweeps(scale, seed)


def clear_caches() -> None:
    """Drop all memoized workloads and sweeps (tests use this)."""
    worrell_workload.cache_clear()
    campus_workloads.cache_clear()
    worrell_sweeps.cache_clear()
    campus_sweeps.cache_clear()
