"""Figure 4 — bandwidth usage in the optimized simulator.

"Files are transmitted only when they are truly stale.  With this
optimization, both TTL and Alex use less bandwidth than the Invalidation
Protocol in nearly all cases."
"""

from __future__ import annotations

from repro.analysis.report import ExperimentReport, ShapeCheck
from repro.analysis.sweep import SweepResult
from repro.experiments.common import worrell_sweeps
from repro.experiments.panels import bandwidth_panel, two_panel_report

EXPERIMENT_ID = "figure4"
TITLE = "Bandwidth usage in the optimized simulator (If-Modified-Since)"


def _fraction_below_invalidation(sweep: SweepResult) -> float:
    inval = sweep.invalidation["total_mb"]
    points = [p for p in sweep.points if p.parameter > 0]
    if not points:
        return 0.0
    below = sum(1 for p in points if p.metrics["total_mb"] < inval)
    return below / len(points)


def _checks(alex: SweepResult, ttl: SweepResult, scale: float,
            seed: int) -> list[ShapeCheck]:
    checks = []
    for sweep, label in ((alex, "alex"), (ttl, "ttl")):
        frac = _fraction_below_invalidation(sweep)
        checks.append(
            ShapeCheck(
                f"{label}-below-invalidation-nearly-everywhere",
                frac >= 0.7,
                f"{frac * 100:.0f}% of nonzero parameter settings beat "
                f"invalidation ({sweep.invalidation['total_mb']:.1f} MB)",
            )
        )

    # Section 4.1's mechanism: messages are 43 bytes, files are
    # thousands — saved file transfers dominate extra queries.
    base_alex, _ = worrell_sweeps("base", scale, seed)
    mid_base = base_alex.point_at(base_alex.parameters()[len(base_alex.points) // 2])
    mid_opt = alex.point_at(mid_base.parameter)
    checks.append(
        ShapeCheck(
            "conditional-retrieval-saves-bandwidth",
            mid_opt.metrics["total_mb"] < mid_base.metrics["total_mb"],
            f"Alex({mid_base.parameter:g}%): base {mid_base.metrics['total_mb']:.1f} MB "
            f"-> optimized {mid_opt.metrics['total_mb']:.1f} MB",
        )
    )
    return checks


def run(scale: float = 1.0, seed: int = 0) -> ExperimentReport:
    """Regenerate Figure 4 at the given workload scale."""
    alex, ttl = worrell_sweeps("optimized", scale, seed)
    rendered = two_panel_report(alex, ttl, bandwidth_panel)
    return ExperimentReport(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rendered=rendered,
        checks=_checks(alex, ttl, scale, seed),
        data={
            "alex": {
                "threshold_percent": alex.parameters(),
                "total_mb": alex.series("total_mb"),
            },
            "ttl": {
                "ttl_hours": ttl.parameters(),
                "total_mb": ttl.series("total_mb"),
            },
            "invalidation_mb": alex.invalidation["total_mb"],
        },
    )
