"""Figure 8 — server load of the three consistency protocols.

"Notice that parameterization is critical for efficient operation of
either Alex or TTL and that Alex imposes less load on the server than
TTL.  TTL always imposes more load than the invalidation protocol while
Alex requires an update threshold of at least 64% in order to achieve
the same server load as the invalidation protocol.  At this 64%
threshold, the stale cache miss rate is 4%."  Threshold 0 "creates
nearly two orders of magnitude more server queries."
"""

from __future__ import annotations

from repro.analysis.report import ExperimentReport, ShapeCheck, pct
from repro.analysis.sweep import SweepResult, crossover_parameter
from repro.experiments.common import campus_sweeps
from repro.experiments.panels import server_load_panel, two_panel_report

EXPERIMENT_ID = "figure8"
TITLE = "Server load of the three consistency protocols (campus traces)"


def _checks(alex: SweepResult, ttl: SweepResult) -> list[ShapeCheck]:
    checks = []
    inval_ops = alex.invalidation["server_operations"]

    ops_at_zero = alex.point_at(0.0).metrics["server_operations"]
    checks.append(
        ShapeCheck(
            "alex-threshold-0-two-orders-of-magnitude",
            ops_at_zero >= 30 * inval_ops,
            f"Alex(0%) {ops_at_zero:.0f} ops vs invalidation "
            f"{inval_ops:.0f} ops ({ops_at_zero / inval_ops:.0f}x; "
            "paper: ~two orders of magnitude)",
        )
    )

    ttl_above = all(
        p.metrics["server_operations"] > ttl.invalidation["server_operations"]
        for p in ttl.points
    )
    checks.append(
        ShapeCheck(
            "ttl-always-above-invalidation",
            ttl_above,
            f"min TTL ops {min(ttl.series('server_operations')):.0f} vs "
            f"invalidation {ttl.invalidation['server_operations']:.0f}",
        )
    )

    cross = crossover_parameter(alex, "server_operations")
    checks.append(
        ShapeCheck(
            "alex-crosses-below-invalidation-at-high-threshold",
            cross is not None and cross > 10,
            f"Alex matches invalidation load at threshold "
            f"{cross if cross is not None else 'never'}% (paper: ~64%)",
        )
    )
    if cross is not None:
        stale_at_cross = alex.point_at(cross).metrics["stale_hit_rate"]
        checks.append(
            ShapeCheck(
                "stale-rate-at-crossover-acceptable",
                stale_at_cross <= 0.06,
                f"stale at {cross:g}% threshold: {pct(stale_at_cross)} "
                "(paper: 4% at its 64% crossover)",
            )
        )

    # "Alex imposes less load on the server than TTL": compare at
    # settings delivering a similar (low) stale rate.
    alex_ok = [
        p for p in alex.points
        if p.metrics["stale_hit_rate"] <= 0.05 and p.parameter > 0
    ]
    ttl_ok = [
        p for p in ttl.points
        if p.metrics["stale_hit_rate"] <= 0.05 and p.parameter > 0
    ]
    if alex_ok and ttl_ok:
        best_alex = min(p.metrics["server_operations"] for p in alex_ok)
        best_ttl = min(p.metrics["server_operations"] for p in ttl_ok)
        checks.append(
            ShapeCheck(
                "alex-imposes-less-load-than-ttl",
                best_alex < best_ttl,
                f"best ops at <=5% stale: Alex {best_alex:.0f} vs "
                f"TTL {best_ttl:.0f}",
            )
        )
    return checks


def run(scale: float = 1.0, seed: int = 0) -> ExperimentReport:
    """Regenerate Figure 8 at the given workload scale."""
    alex, ttl = campus_sweeps(scale, seed)
    rendered = two_panel_report(alex, ttl, server_load_panel)
    return ExperimentReport(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rendered=rendered,
        checks=_checks(alex, ttl),
        data={
            "alex": {
                "threshold_percent": alex.parameters(),
                "server_operations": alex.series("server_operations"),
            },
            "ttl": {
                "ttl_hours": ttl.parameters(),
                "server_operations": ttl.series("server_operations"),
            },
            "invalidation_ops": alex.invalidation["server_operations"],
            "crossover_threshold": crossover_parameter(
                alex, "server_operations"
            ),
        },
    )
