"""Extension: invalidation's scaling problem as caches multiply.

Section 1.0's case against invalidation protocols is operational:
"Servers must keep track of where their objects are currently cached,
introducing scalability problems or necessitating hierarchical caching."

This experiment quantifies the claim.  The HCS client population is
partitioned across N independent proxy caches (N = 1..16), each serving
its own clients against the same origin.  Under the invalidation
protocol the origin must notify *every* cache of *every* change, so its
notification load grows linearly with N regardless of traffic; under
Alex the origin only ever answers the queries caches choose to send, and
each cache's query schedule is driven by its own (shrinking) request
share.  The measured curves show origin load growing ~N-fold for
invalidation while Alex stays within a small factor of its single-cache
load — the paper's scalability argument, in numbers.
"""

from __future__ import annotations

from zlib import crc32

from repro.analysis.plots import Series, ascii_chart
from repro.analysis.report import ExperimentReport, ShapeCheck, format_table
from repro.core.protocols import AlexProtocol, InvalidationProtocol
from repro.core.results import merge_results
from repro.core.simulator import SimulatorMode
from repro.verify import checked_simulate
from repro.workload.campus import HCS, CampusWorkload

EXPERIMENT_ID = "ext-scalability"
TITLE = "Extension: origin server load vs number of caches (Section 1 claim)"

CACHE_COUNTS = (1, 2, 4, 8, 16)


def _partitioned_run(workload, protocol_factory, n_caches: int):
    """Run N independent caches over a client-partitioned request stream.

    Every cache is preloaded (each serves its own client community, as
    the paper's single-cache runs assume) and sees only its partition's
    requests; the merged result reports origin-side totals.
    """
    server = workload.server()
    clients = workload.clients
    shards: list[list[tuple[float, str]]] = [[] for _ in range(n_caches)]
    for index, (t, oid) in enumerate(workload.requests):
        shards[crc32(clients[index].encode()) % n_caches].append((t, oid))
    # The caches are fully independent, so each shard runs start-to-end
    # on its own (oracle-checkable) simulation; the interleaving of the
    # original stream does not affect any per-cache outcome.
    results = [
        checked_simulate(
            server, protocol_factory(), shard_requests,
            SimulatorMode.OPTIMIZED, end_time=workload.duration,
        )
        for shard_requests in shards
    ]
    return merge_results(results)


def run(scale: float = 1.0, seed: int = 0) -> ExperimentReport:
    """Measure origin load as the cache population grows."""
    workload = CampusWorkload(HCS, seed=seed + 2, request_scale=scale).build()

    rows = []
    inval_ops, alex_ops = [], []
    for n in CACHE_COUNTS:
        inval = _partitioned_run(workload, InvalidationProtocol, n)
        alex = _partitioned_run(
            workload, lambda: AlexProtocol.from_percent(10), n
        )
        inval_ops.append(float(inval.server_operations))
        alex_ops.append(float(alex.server_operations))
        rows.append(
            (
                n,
                inval.server_operations,
                inval.counters.server_invalidations_sent,
                alex.server_operations,
                f"{100 * alex.stale_hit_rate:.2f}%",
            )
        )

    table = format_table(
        ("caches", "invalidation ops", "of which notices",
         "alex(10%) ops", "alex stale"),
        rows,
        title="Origin-side load, HCS clients partitioned across N caches:",
    )
    chart = ascii_chart(
        [
            Series("invalidation", list(CACHE_COUNTS), inval_ops, glyph="o"),
            Series("alex(10%)", list(CACHE_COUNTS), alex_ops, glyph="*"),
        ],
        title="Origin server operations vs cache count",
        xlabel="number of caches",
        ylabel="server operations",
        log_y=True,
    )

    inval_growth = inval_ops[-1] / inval_ops[0]
    alex_growth = alex_ops[-1] / alex_ops[0]
    n_growth = CACHE_COUNTS[-1] / CACHE_COUNTS[0]
    checks = [
        ShapeCheck(
            "invalidation-load-grows-roughly-linearly-with-caches",
            inval_growth > 0.5 * n_growth,
            f"{inval_ops[0]:.0f} ops at 1 cache -> {inval_ops[-1]:.0f} at "
            f"{CACHE_COUNTS[-1]} ({inval_growth:.1f}x for {n_growth:.0f}x "
            "caches)",
        ),
        ShapeCheck(
            "alex-load-grows-much-slower",
            alex_growth < inval_growth / 2,
            f"Alex grows {alex_growth:.1f}x vs invalidation's "
            f"{inval_growth:.1f}x over the same fan-out",
        ),
        ShapeCheck(
            "notices-are-the-majority-at-scale",
            rows[-1][2] > 0.5 * rows[-1][1],
            f"at {CACHE_COUNTS[-1]} caches, {rows[-1][2]} of "
            f"{rows[-1][1]} invalidation ops are callback notices",
        ),
        ShapeCheck(
            "callback-bookkeeping-is-exactly-linear-in-caches",
            rows[-1][2] == CACHE_COUNTS[-1] * rows[0][2],
            f"notices: {rows[0][2]} at 1 cache -> {rows[-1][2]} at "
            f"{CACHE_COUNTS[-1]} — one per change per registered cache, "
            "independent of traffic (the Section 1 bookkeeping cost)",
        ),
    ]
    return ExperimentReport(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rendered=f"{table}\n\n{chart}",
        checks=checks,
        data={
            "cache_counts": list(CACHE_COUNTS),
            "invalidation_ops": inval_ops,
            "alex_ops": alex_ops,
        },
    )
