"""Table 1 — mutability statistics of the campus servers.

"Summary of mutability statistics for various campus servers over a
one-month period.  Mutable files are defined to be those files that were
observed to change more than once over the time period.  Very mutable
files are those that were observed to change more than 5 times. ...
Notice that the most popular server, the FAS server, is also the one
with the fewest mutable files."

The experiment synthesizes the three campus workloads, computes the
statistics both from ground truth (the modification schedules) and from
the access trace (what the paper's modified logs could observe), and
compares against the published row.  The HCS row's published change
total is infeasible under its own mutability percentages (see
repro.workload.campus); the check therefore allows the documented
feasibility gap.
"""

from __future__ import annotations

from repro.analysis.report import ExperimentReport, ShapeCheck, format_table
from repro.core.clock import DAY
from repro.experiments.common import campus_workloads
from repro.trace.stats import (
    daily_change_probability,
    mutability_from_histories,
    mutability_from_trace,
)
from repro.trace.synthesis import trace_from_workload
from repro.workload.campus import CAMPUS_SERVERS

EXPERIMENT_ID = "table1"
TITLE = "Mutability statistics for the campus servers (DAS, FAS, HCS)"

_HEADERS = (
    "Server", "Files", "Requests", "% Remote", "Total Changes",
    "% Mutable", "% Very Mutable",
)


def run(scale: float = 1.0, seed: int = 0) -> ExperimentReport:
    """Regenerate Table 1 from synthetic campus traces."""
    workloads = campus_workloads(scale, seed)
    specs = {spec.name: spec for spec in CAMPUS_SERVERS}

    paper_rows, truth_rows, observed_rows = [], [], []
    checks: list[ShapeCheck] = []
    change_probs = {}
    for workload in workloads:
        spec = specs[workload.name]
        paper_rows.append(
            (spec.name, spec.files, spec.requests, spec.pct_remote,
             spec.total_changes, spec.pct_mutable, spec.pct_very_mutable)
        )
        truth = mutability_from_histories(
            workload.histories,
            workload.duration,
            name=spec.name,
            requests=len(workload.requests),
            pct_remote=100.0
            * sum(1 for c in workload.clients if "remote" in c)
            / len(workload.clients),
        )
        truth_rows.append(truth.as_row())
        observed = mutability_from_trace(trace_from_workload(workload))
        observed_rows.append(observed.as_row())
        change_probs[spec.name] = daily_change_probability(
            truth.total_changes, truth.files, workload.duration / DAY
        )

        checks.append(
            ShapeCheck(
                f"{spec.name}-population-counts-match",
                truth.files == spec.files
                and truth.requests == int(round(spec.requests * scale)),
                f"files {truth.files} (paper {spec.files}), requests "
                f"{truth.requests} (paper {spec.requests} x scale {scale:g})",
            )
        )
        checks.append(
            ShapeCheck(
                f"{spec.name}-mutability-percentages-match",
                abs(truth.pct_mutable - spec.pct_mutable) <= 0.5
                and abs(truth.pct_very_mutable - spec.pct_very_mutable) <= 0.5,
                f"mutable {truth.pct_mutable:.2f}% (paper {spec.pct_mutable}%), "
                f"very {truth.pct_very_mutable:.2f}% "
                f"(paper {spec.pct_very_mutable}%)",
            )
        )
        target = spec.target_changes
        checks.append(
            ShapeCheck(
                f"{spec.name}-total-changes-match-target",
                abs(truth.total_changes - target) <= max(2, 0.1 * target),
                f"changes {truth.total_changes} vs feasible target {target} "
                f"(paper reports {spec.total_changes})",
            )
        )
        checks.append(
            ShapeCheck(
                f"{spec.name}-remote-fraction-matches",
                abs(truth.pct_remote - spec.pct_remote) <= 2.0,
                f"remote {truth.pct_remote:.1f}% (paper {spec.pct_remote}%)",
            )
        )

    # "This yields a 1.8% average change probability, which is consistent
    # with Bestavros' per-day file-change probability of 0.5% - 2.0%".
    hcs_prob = change_probs["HCS"]
    checks.append(
        ShapeCheck(
            "hcs-daily-change-probability-bestavros-range",
            0.005 <= hcs_prob <= 0.025,
            f"HCS per-file per-day change probability "
            f"{100 * hcs_prob:.2f}% (paper: 1.8%)",
        )
    )
    # FAS is the most popular server and has the fewest mutable files.
    fas_truth = next(r for r in truth_rows if r[0] == "FAS")
    others = [r for r in truth_rows if r[0] != "FAS"]
    checks.append(
        ShapeCheck(
            "fas-most-popular-least-mutable",
            all(fas_truth[5] < other[5] for other in others),
            f"FAS mutable {fas_truth[5]}% vs others "
            f"{[other[5] for other in others]}",
        )
    )

    rendered = "\n\n".join(
        [
            format_table(_HEADERS, paper_rows, title="Paper's Table 1:"),
            format_table(
                _HEADERS, truth_rows,
                title="Synthetic traces, ground truth (schedules):",
            ),
            format_table(
                _HEADERS, observed_rows,
                title="Synthetic traces, as observable from the logs "
                      "(Last-Modified transitions):",
            ),
        ]
    )
    return ExperimentReport(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rendered=rendered,
        checks=checks,
        data={
            "paper": paper_rows,
            "ground_truth": truth_rows,
            "observed": observed_rows,
            "daily_change_probability": change_probs,
        },
    )
