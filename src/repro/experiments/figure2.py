"""Figure 2 — bandwidth usage in the base simulator.

"The cache is pre-loaded with valid copies of all the files held in the
primary server. ... The invalidation protocol is superior to both TTL
and Alex until the update threshold or TTL is quite large.  This result
is similar to Worrell's result for TTL protocols and indicates that Alex
behaves comparably."
"""

from __future__ import annotations

from repro.analysis.report import ExperimentReport, ShapeCheck
from repro.analysis.sweep import SweepResult
from repro.experiments.common import worrell_sweeps
from repro.experiments.panels import bandwidth_panel, two_panel_report

EXPERIMENT_ID = "figure2"
TITLE = "Bandwidth usage in the base simulator (Worrell workload)"


def _non_increasing(values: list[float], tolerance: float = 1.10) -> bool:
    """Monotone decrease up to small stochastic wobble."""
    return all(b <= a * tolerance for a, b in zip(values, values[1:]))


def _checks(alex: SweepResult, ttl: SweepResult) -> list[ShapeCheck]:
    checks = []

    alex_mb = alex.series("total_mb")
    ttl_mb = ttl.series("total_mb")
    checks.append(
        ShapeCheck(
            "alex-bandwidth-decreases-with-threshold",
            _non_increasing(alex_mb),
            f"MB from {alex_mb[0]:.1f} at 0% to {alex_mb[-1]:.1f} at 100%",
        )
    )
    checks.append(
        ShapeCheck(
            "ttl-bandwidth-decreases-with-ttl",
            _non_increasing(ttl_mb),
            f"MB from {ttl_mb[0]:.1f} at 0h to {ttl_mb[-1]:.1f} at 500h",
        )
    )

    inval_mb = alex.invalidation["total_mb"]
    small_alex = [
        p.metrics["total_mb"] for p in alex.points if p.parameter <= 40
    ]
    small_ttl = [
        p.metrics["total_mb"] for p in ttl.points if p.parameter <= 100
    ]
    checks.append(
        ShapeCheck(
            "invalidation-superior-at-small-parameters",
            all(mb > inval_mb for mb in small_alex)
            and all(mb > inval_mb for mb in small_ttl),
            f"invalidation {inval_mb:.1f} MB vs Alex<=40% min "
            f"{min(small_alex):.1f} MB, TTL<=100h min {min(small_ttl):.1f} MB",
        )
    )

    checks.append(
        ShapeCheck(
            "unconditional-refetch-is-expensive-at-threshold-0",
            alex_mb[0] > 5 * inval_mb,
            f"Alex(0%) {alex_mb[0]:.1f} MB vs invalidation {inval_mb:.1f} MB",
        )
    )
    return checks


def run(scale: float = 1.0, seed: int = 0) -> ExperimentReport:
    """Regenerate Figure 2 at the given workload scale."""
    alex, ttl = worrell_sweeps("base", scale, seed)
    rendered = two_panel_report(alex, ttl, bandwidth_panel)
    return ExperimentReport(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rendered=rendered,
        checks=_checks(alex, ttl),
        data={
            "alex": {
                "threshold_percent": alex.parameters(),
                "total_mb": alex.series("total_mb"),
            },
            "ttl": {
                "ttl_hours": ttl.parameters(),
                "total_mb": ttl.series("total_mb"),
            },
            "invalidation_mb": alex.invalidation["total_mb"],
        },
    )
