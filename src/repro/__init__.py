"""repro — a reproduction of Gwertzman & Seltzer, "World-Wide Web Cache
Consistency" (USENIX Annual Technical Conference, 1996).

The package provides:

* ``repro.core`` — the consistency protocols (TTL, Alex adaptive
  threshold, server invalidation, and baselines) and the trace-driven
  single-cache and hierarchical simulators.
* ``repro.http`` — the minimal HTTP/1.0 modelling the protocols ride on.
* ``repro.workload`` — synthetic workload generators: Worrell's flat
  lifetime model and the trace-shaped campus/Microsoft/Boston-University
  workloads (Zipf popularity, bimodal lifetimes, popularity-mutability
  anti-correlation).
* ``repro.trace`` — extended Common-Log-Format traces, mutability
  statistics (Table 1), and the daily-sampling life-span estimator
  (Table 2).
* ``repro.analysis`` — parameter sweeps, reports, ASCII plots.
* ``repro.experiments`` — one module per paper table/figure;
  ``python -m repro.experiments <id>`` regenerates any of them.

Quickstart::

    from repro.core import OriginServer, SimulatorMode, simulate
    from repro.core.protocols import AlexProtocol
    from repro.workload import WorrellWorkload

    workload = WorrellWorkload(files=200, requests=5000, seed=7).build()
    result = simulate(
        OriginServer(workload.histories),
        AlexProtocol.from_percent(10),
        workload.requests,
        SimulatorMode.OPTIMIZED,
    )
    print(result.total_megabytes, result.stale_hit_rate)
"""

from repro.core import (
    Cache,
    OriginServer,
    Simulation,
    SimulationResult,
    SimulatorMode,
    simulate,
)
from repro.core.protocols import (
    AlexProtocol,
    InvalidationProtocol,
    TTLProtocol,
)

__version__ = "1.0.0"

__all__ = [
    "AlexProtocol",
    "Cache",
    "InvalidationProtocol",
    "OriginServer",
    "Simulation",
    "SimulationResult",
    "SimulatorMode",
    "TTLProtocol",
    "simulate",
    "__version__",
]
