"""Reconstructing simulator inputs from access logs.

The paper's modified server logs record each request's Last-Modified
timestamp, which is enough to rebuild the origin's modification history
*as observed*: every path becomes an object whose creation time is the
earliest Last-Modified seen and whose modifications are the later
distinct values.  Changes no request straddled are unrecoverable — the
same observability limit the paper's own Table 1 methodology has (the
tests quantify the gap).

This is what lets every tool in the library run against a real log file
instead of a synthetic workload: ``repro simulate`` and ``repro sweep``
are thin wrappers over :func:`workload_from_trace`.
"""

from __future__ import annotations

from repro.core.objects import ModificationSchedule, ObjectHistory, WebObject
from repro.core.server import OriginServer
from repro.trace.records import Trace
from repro.workload.base import Workload

#: Path extensions mapped to the Table 2 type labels.
_KNOWN_TYPES = ("gif", "html", "jpg", "cgi")


def histories_from_trace(trace: Trace) -> list[ObjectHistory]:
    """Rebuild object histories from a trace's Last-Modified trail.

    Paths that never carry Last-Modified are treated as dynamic
    (non-cacheable) content; sizes take the maximum observed (logs record
    transferred bytes, and the largest transfer is the full body).
    """
    lm_seen: dict[str, list[float]] = {}
    sizes: dict[str, int] = {}
    dynamic: set[str] = set()
    for record in trace:
        sizes[record.path] = max(sizes.get(record.path, 0), record.size)
        if record.last_modified is None:
            if record.path not in lm_seen:
                dynamic.add(record.path)
            continue
        dynamic.discard(record.path)
        bucket = lm_seen.setdefault(record.path, [])
        if not bucket or bucket[-1] != record.last_modified:
            bucket.append(record.last_modified)

    histories = []
    for path in sorted(sizes):
        extension = path.rsplit(".", 1)[-1] if "." in path else "other"
        file_type = extension if extension in _KNOWN_TYPES else "other"
        if path in dynamic:
            histories.append(
                ObjectHistory(
                    WebObject(path, size=sizes[path], file_type="cgi",
                              created=-1.0, cacheable=False)
                )
            )
            continue
        lms = sorted(set(lm_seen.get(path, [-1.0])))
        created, changes = lms[0], lms[1:]
        histories.append(
            ObjectHistory(
                WebObject(path, size=sizes[path], file_type=file_type,
                          created=created),
                ModificationSchedule(created, changes),
            )
        )
    return histories


def server_from_trace(trace: Trace) -> OriginServer:
    """An origin server holding the trace's observed object histories."""
    return OriginServer(histories_from_trace(trace))


def workload_from_trace(trace: Trace) -> Workload:
    """A complete simulator workload rebuilt from an access log.

    The returned workload's duration is the last record's timestamp, so
    simulations driven from it deliver trailing invalidations up to the
    log's end.
    """
    requests = trace.requests()
    return Workload(
        histories=histories_from_trace(trace),
        requests=requests,
        duration=requests[-1][0] if requests else 0.0,
        clients=[record.client for record in trace],
        name=trace.name,
    )
