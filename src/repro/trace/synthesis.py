"""Turning workloads into on-disk traces and back.

The reproduction's workload generators produce in-memory
:class:`~repro.workload.base.Workload` objects; this module renders them
as the extended Common-Log-Format files the paper's servers produced
(Last-Modified on every satisfied request), and loads such files back
into simulator inputs.  The round trip is exact to one-second timestamp
granularity — the granularity of the real log format.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.trace.clf import read_clf, write_clf
from repro.trace.records import Trace, TraceRecord
from repro.workload.base import Workload

#: Client name used when a workload carries no per-request client info.
DEFAULT_CLIENT = "client.example.net"


def trace_from_workload(workload: Workload) -> Trace:
    """Render a workload as the access trace its server would have logged.

    Every record carries the object's true Last-Modified at request time
    (the paper's log extension) and the object's size, except dynamic
    objects, which log size but no Last-Modified.
    """
    server = workload.server()
    clients = workload.clients
    records = []
    for index, (t, oid) in enumerate(workload.requests):
        obj = server.object(oid)
        last_modified: Optional[float]
        if obj.cacheable:
            last_modified = server.schedule(oid).last_modified_at(t)
        else:
            last_modified = None
        records.append(
            TraceRecord(
                timestamp=t,
                client=clients[index] if clients else DEFAULT_CLIENT,
                path=oid,
                status=200,
                size=obj.size,
                last_modified=last_modified,
            )
        )
    return Trace(records, name=workload.name)


def write_trace(trace: Trace, path: Union[str, Path]) -> int:
    """Write a trace to ``path`` in extended CLF; returns lines written."""
    path = Path(path)
    with path.open("w", encoding="ascii") as stream:
        stream.write(f"# extended CLF trace: {trace.name}\n")
        stream.write("# client - - [time] \"GET path HTTP/1.0\" status size"
                     " \"last-modified\"\n")
        return write_clf(iter(trace), stream)


def read_trace(path: Union[str, Path], name: Optional[str] = None) -> Trace:
    """Load an extended-CLF file written by :func:`write_trace`.

    Raises:
        FileNotFoundError: when ``path`` does not exist.
        CLFParseError: on malformed lines.
    """
    path = Path(path)
    with path.open("r", encoding="ascii") as stream:
        return read_clf(stream, name=name or path.stem)
