"""Daily-granularity modification sampling — the BU methodology (Table 2).

"Each day between March 28 and October 7, Bestavros sampled the server
and recorded all the files that were modified since the previous day."
(Section 4.2)

:class:`DailySampler` replays that measurement over a synthetic
population: once per day it records which files changed during the
preceding day.  Two properties of the real measurement are reproduced
faithfully:

* **day-granularity masking** — multiple changes within one day collapse
  into a single observation ("It is possible that the one day granularity
  masked a number of changes");
* **the conservative life-span bias** — "we err on the side of
  conservatism ... assuming that all data changed at least once during
  the measurement interval.  This biases the results because the longest
  life-span we consider is 186 days."  Files never observed to change are
  assigned one change, i.e. a life-span equal to the full window.

The paper does not spell out its estimator formulas, so ours are stated
explicitly:

* per-file **life-span** = window / max(observed change-days, 1), capped
  at the window length;
* per-file **age** at window end = time since the last observed change,
  or the full window for never-changed files (again the cap).

EXPERIMENTS.md compares the recovered per-type numbers against Table 2 as
shape-level checks (ordering and ballpark), not digit matches.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.clock import DAY
from repro.core.objects import ObjectHistory


@dataclass(frozen=True)
class DailySample:
    """One day's observation: which files changed since the previous day."""

    day: int
    changed: frozenset[str]


@dataclass(frozen=True)
class LifespanEstimate:
    """Per-type aggregate the Table 2 BU columns report.

    Attributes:
        file_type: the type label.
        files: number of files of this type in the population.
        observed_change_days: total change-day observations.
        avg_age_days: mean age at window end, in days.
        median_lifespan_days: median estimated life-span, in days.
        mean_lifespan_days: mean estimated life-span, in days.
    """

    file_type: str
    files: int
    observed_change_days: int
    avg_age_days: float
    median_lifespan_days: float
    mean_lifespan_days: float


class DailySampler:
    """Sample a population's modifications at one-day granularity.

    Args:
        histories: the population to observe.
        window: measurement window in seconds; sampling happens at the
            end of each whole day in ``[1, window/DAY]``.

    Raises:
        ValueError: for a window shorter than one day.
    """

    def __init__(
        self, histories: Iterable[ObjectHistory], window: float
    ) -> None:
        self.histories = list(histories)
        if window < DAY:
            raise ValueError(
                f"window must cover at least one day, got {window} s"
            )
        self.window = float(window)
        self.days = int(self.window // DAY)

    def run(self) -> list[DailySample]:
        """Produce the day-by-day observation log."""
        samples = []
        for day in range(1, self.days + 1):
            start, end = (day - 1) * DAY, day * DAY
            changed = frozenset(
                h.object_id
                for h in self.histories
                if h.schedule.changes_in(start, end) > 0
            )
            samples.append(DailySample(day=day, changed=changed))
        return samples

    def observed_change_days(
        self, samples: Sequence[DailySample]
    ) -> dict[str, int]:
        """Change-day count per file (the masked change count)."""
        counts = {h.object_id: 0 for h in self.histories}
        for sample in samples:
            for oid in sample.changed:
                counts[oid] += 1
        return counts

    def last_observed_change(
        self, samples: Sequence[DailySample]
    ) -> dict[str, int]:
        """Last day (1-based) each file was seen changing; 0 if never."""
        last = {h.object_id: 0 for h in self.histories}
        for sample in samples:
            for oid in sample.changed:
                last[oid] = sample.day
        return last

    def estimate_lifespans(
        self, samples: Sequence[DailySample]
    ) -> dict[str, LifespanEstimate]:
        """Per-type life-span and age estimates with the paper's bias."""
        window_days = float(self.days)
        counts = self.observed_change_days(samples)
        last = self.last_observed_change(samples)
        by_type: dict[str, list[ObjectHistory]] = {}
        for h in self.histories:
            by_type.setdefault(h.obj.file_type, []).append(h)

        estimates: dict[str, LifespanEstimate] = {}
        for file_type, members in sorted(by_type.items()):
            lifespans, ages, total_obs = [], [], 0
            for h in members:
                observed = counts[h.object_id]
                total_obs += observed
                # Conservative bias: never-changed files are treated as
                # having changed exactly once over the window.
                lifespan = window_days / max(observed, 1)
                lifespans.append(min(lifespan, window_days))
                last_day = last[h.object_id]
                age = window_days - last_day if last_day else window_days
                ages.append(min(age, window_days))
            estimates[file_type] = LifespanEstimate(
                file_type=file_type,
                files=len(members),
                observed_change_days=total_obs,
                avg_age_days=statistics.fmean(ages),
                median_lifespan_days=statistics.median(lifespans),
                mean_lifespan_days=statistics.fmean(lifespans),
            )
        return estimates

    def masking_loss(self, samples: Sequence[DailySample]) -> float:
        """Fraction of true changes hidden by day granularity.

        Compares observed change-days against the schedules' ground
        truth; the paper conjectures this masking is small ("it is
        unlikely" to hide an order of magnitude).
        """
        true_changes = sum(
            h.schedule.changes_in(0.0, self.days * DAY)
            for h in self.histories
        )
        observed = sum(self.observed_change_days(samples).values())
        if true_changes == 0:
            return 0.0
        return 1.0 - observed / true_changes
