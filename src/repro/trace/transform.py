"""Trace transformations: merge, clip, anonymize, rescale.

Working with access logs routinely needs a few structural operations
before analysis or simulation — combining logs from several servers,
restricting to a measurement window, stripping client identities before
sharing, or thinning a trace for a quick run.  All transforms are pure:
they return new :class:`Trace` objects and never mutate their input.
"""

from __future__ import annotations

from typing import Sequence

from repro.trace.records import Trace, TraceRecord


def merge_traces(traces: Sequence[Trace], name: str = "merged") -> Trace:
    """Interleave several traces into one time-ordered trace.

    Raises:
        ValueError: on an empty input sequence.
    """
    if not traces:
        raise ValueError("cannot merge zero traces")
    records = [record for trace in traces for record in trace]
    return Trace(records, name=name)


def clip_window(trace: Trace, start: float, end: float) -> Trace:
    """Keep only records with ``start <= timestamp < end``.

    Raises:
        ValueError: for an inverted window.
    """
    if end < start:
        raise ValueError(f"inverted window: [{start}, {end})")
    return Trace(
        (r for r in trace if start <= r.timestamp < end),
        name=f"{trace.name}[{start:g}:{end:g}]",
    )


def shift_times(trace: Trace, offset: float) -> Trace:
    """Shift every timestamp (and Last-Modified) by ``offset`` seconds.

    Useful for re-basing a clipped window to t=0 before simulation.
    """
    records = [
        TraceRecord(
            timestamp=r.timestamp + offset,
            client=r.client,
            path=r.path,
            status=r.status,
            size=r.size,
            last_modified=(
                None if r.last_modified is None else r.last_modified + offset
            ),
        )
        for r in trace
    ]
    return Trace(records, name=f"{trace.name}+{offset:g}s")


def anonymize_clients(trace: Trace, prefix: str = "client") -> Trace:
    """Replace client hostnames with stable opaque labels.

    The mapping is assignment-ordered (first distinct client becomes
    ``client000``), so equal inputs anonymize identically and request
    patterns per client are preserved — which is all the remote/local
    and per-client analyses need.
    """
    mapping: dict[str, str] = {}
    records = []
    for r in trace:
        label = mapping.get(r.client)
        if label is None:
            label = f"{prefix}{len(mapping):03d}"
            mapping[r.client] = label
        records.append(
            TraceRecord(
                timestamp=r.timestamp, client=label, path=r.path,
                status=r.status, size=r.size, last_modified=r.last_modified,
            )
        )
    return Trace(records, name=f"{trace.name}|anon")


def sample_every(trace: Trace, n: int) -> Trace:
    """Keep every n-th record (systematic thinning for quick runs).

    Raises:
        ValueError: for n < 1.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return Trace(
        (r for i, r in enumerate(trace) if i % n == 0),
        name=f"{trace.name}/1:{n}",
    )


def filter_paths(trace: Trace, suffixes: Sequence[str]) -> Trace:
    """Keep only requests whose path ends with one of ``suffixes``.

    The per-type analyses (Table 2's access mix) use this to slice a
    trace by content type.
    """
    wanted = tuple(suffixes)
    return Trace(
        (r for r in trace if r.path.endswith(wanted)),
        name=f"{trace.name}|{'|'.join(wanted)}",
    )
