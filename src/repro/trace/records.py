"""Trace records — the paper's modified server-log format, as data.

"The server logs were taken from several campus Web servers, modified to
store the last-modified timestamps with each file request satisfied by
the servers.  We used the file system's last modification time for the
timestamp."  (Section 4.2)

A :class:`TraceRecord` is one such log line: who asked for what, when,
how many bytes were returned, and what the file's Last-Modified time was
at that instant.  A :class:`Trace` is a time-ordered sequence of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One access-log line.

    Attributes:
        timestamp: request time in simulation seconds.
        client: requesting host name.
        path: the object's URL path.
        status: HTTP status code returned.
        size: body bytes returned.
        last_modified: the object's Last-Modified at request time — the
            paper's log extension; None when the server did not record it
            (e.g. dynamic content).
    """

    timestamp: float
    client: str
    path: str
    status: int = 200
    size: int = 0
    last_modified: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.path:
            raise ValueError("path must be non-empty")
        if self.size < 0:
            raise ValueError(f"size must be non-negative: {self.size}")


class Trace:
    """A time-ordered access trace.

    Args:
        records: the log lines; they are sorted by timestamp on ingest
            (stable, so equal-time lines keep their order).
        name: label for reports.
    """

    def __init__(self, records: Iterable[TraceRecord], name: str = "trace") -> None:
        self._records = sorted(records, key=lambda r: r.timestamp)
        self.name = name

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __getitem__(self, idx: int) -> TraceRecord:
        return self._records[idx]

    @property
    def duration(self) -> float:
        """Time span from the first to the last record (0 when empty)."""
        if not self._records:
            return 0.0
        return self._records[-1].timestamp - self._records[0].timestamp

    def paths(self) -> set[str]:
        """Distinct object paths referenced."""
        return {r.path for r in self._records}

    def requests(self) -> list[tuple[float, str]]:
        """The ``(time, path)`` stream the simulator consumes."""
        return [(r.timestamp, r.path) for r in self._records]

    def filter(self, predicate: Callable[[TraceRecord], bool]) -> "Trace":
        """A new trace containing only records matching ``predicate``."""
        return Trace(
            (r for r in self._records if predicate(r)),
            name=f"{self.name}|filtered",
        )

    def request_counts(self) -> dict[str, int]:
        """Requests per path."""
        counts: dict[str, int] = {}
        for r in self._records:
            counts[r.path] = counts.get(r.path, 0) + 1
        return counts

    def observed_changes(self) -> dict[str, int]:
        """Per-path content changes *observable from the log*.

        A change is observed when two successive requests for the same
        path report different Last-Modified timestamps — exactly what the
        paper's modified logs make visible.  Changes between which no
        request falls are invisible, which is why observed counts can
        undercount the schedule's ground truth.
        """
        last_seen: dict[str, float] = {}
        changes: dict[str, int] = {}
        for r in self._records:
            if r.last_modified is None:
                continue
            previous = last_seen.get(r.path)
            if previous is not None and r.last_modified != previous:
                changes[r.path] = changes.get(r.path, 0) + 1
            last_seen[r.path] = r.last_modified
        return changes
