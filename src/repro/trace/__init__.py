"""Trace infrastructure: records, extended CLF, Table 1/2 statistics.

* :class:`Trace` / :class:`TraceRecord` — the paper's modified server
  logs (Last-Modified recorded per request) as data.
* :mod:`repro.trace.clf` — extended Common-Log-Format reader/writer.
* :func:`mutability_from_histories` / :func:`mutability_from_trace` —
  the Table 1 computation, from ground truth or from what a log shows.
* :class:`DailySampler` — Bestavros' daily modification sampling and the
  conservative life-span estimators behind Table 2.
"""

from repro.trace.clf import (
    CLFParseError,
    format_record,
    iter_clf,
    parse_record,
    read_clf,
    write_clf,
)
from repro.trace.reconstruct import (
    histories_from_trace,
    server_from_trace,
    workload_from_trace,
)
from repro.trace.records import Trace, TraceRecord
from repro.trace.sampler import (
    DailySample,
    DailySampler,
    LifespanEstimate,
)
from repro.trace.stats import (
    VERY_MUTABLE_THRESHOLD,
    MutabilityStats,
    daily_change_probability,
    default_is_remote,
    mutability_from_histories,
    mutability_from_trace,
)
from repro.trace.synthesis import (
    DEFAULT_CLIENT,
    read_trace,
    trace_from_workload,
    write_trace,
)
from repro.trace.transform import (
    anonymize_clients,
    clip_window,
    filter_paths,
    merge_traces,
    sample_every,
    shift_times,
)

__all__ = [
    "CLFParseError",
    "anonymize_clients",
    "clip_window",
    "filter_paths",
    "merge_traces",
    "sample_every",
    "shift_times",
    "histories_from_trace",
    "server_from_trace",
    "workload_from_trace",
    "DEFAULT_CLIENT",
    "DailySample",
    "DailySampler",
    "LifespanEstimate",
    "MutabilityStats",
    "Trace",
    "TraceRecord",
    "VERY_MUTABLE_THRESHOLD",
    "daily_change_probability",
    "default_is_remote",
    "format_record",
    "iter_clf",
    "mutability_from_histories",
    "mutability_from_trace",
    "parse_record",
    "read_clf",
    "read_trace",
    "trace_from_workload",
    "write_clf",
    "write_trace",
]
