"""Extended Common-Log-Format serialization.

The campus servers of 1995 wrote NCSA Common Log Format; the paper's
modification appends the file's Last-Modified timestamp.  One line::

    ws03.das.harvard.edu - - [01/Mar/1995:00:04:17 +0000] \
"GET /das/doc0042.html HTTP/1.0" 200 5120 "Tue, 28 Feb 1995 10:00:00 GMT"

The trailing quoted field is the extension: the Last-Modified HTTP-date,
or ``"-"`` when unavailable.  Reader and writer round-trip exactly.
"""

from __future__ import annotations

import re
import time
from typing import Iterable, Iterator, TextIO

from repro.http.datefmt import (
    HTTPDateError,
    format_http_date,
    parse_http_date,
    sim_to_unix,
    unix_to_sim,
)
from repro.trace.records import Trace, TraceRecord

_MONTHS = (
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
)
_MONTH_INDEX = {name: i + 1 for i, name in enumerate(_MONTHS)}

_LINE_RE = re.compile(
    r'^(?P<client>\S+) \S+ \S+ \[(?P<when>[^\]]+)\] '
    r'"(?P<method>\S+) (?P<path>\S+) (?P<proto>[^"]+)" '
    r'(?P<status>\d{3}) (?P<size>\d+|-)'
    r'(?: "(?P<lm>[^"]*)")?\s*$'
)


class CLFParseError(ValueError):
    """Raised for a malformed log line; carries the line number."""

    def __init__(self, message: str, lineno: int) -> None:
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


def format_clf_time(t: float) -> str:
    """Render simulation time as a CLF timestamp, ``dd/Mon/yyyy:HH:MM:SS +0000``."""
    st = time.gmtime(sim_to_unix(t))
    return (
        f"{st.tm_mday:02d}/{_MONTHS[st.tm_mon - 1]}/{st.tm_year:04d}:"
        f"{st.tm_hour:02d}:{st.tm_min:02d}:{st.tm_sec:02d} +0000"
    )


def parse_clf_time(value: str) -> float:
    """Parse a CLF timestamp back into simulation time.

    Raises:
        ValueError: when the timestamp is malformed.
    """
    import calendar

    match = re.fullmatch(
        r"(\d{2})/(\w{3})/(\d{4}):(\d{2}):(\d{2}):(\d{2}) ([+-]\d{4})", value
    )
    if not match or match.group(2) not in _MONTH_INDEX:
        raise ValueError(f"bad CLF timestamp: {value!r}")
    day, mon, year, hh, mm, ss, zone = match.groups()
    offset_min = int(zone[1:3]) * 60 + int(zone[3:5])
    if zone[0] == "-":
        offset_min = -offset_min
    unix = calendar.timegm(
        (int(year), _MONTH_INDEX[mon], int(day), int(hh), int(mm), int(ss),
         0, 0, 0)
    ) - offset_min * 60
    return unix_to_sim(unix)


def format_record(record: TraceRecord) -> str:
    """Render one record as an extended-CLF line (no newline)."""
    lm = (
        format_http_date(record.last_modified)
        if record.last_modified is not None
        else "-"
    )
    return (
        f"{record.client} - - [{format_clf_time(record.timestamp)}] "
        f'"GET {record.path} HTTP/1.0" {record.status} {record.size} "{lm}"'
    )


def parse_record(line: str, lineno: int = 0) -> TraceRecord:
    """Parse one extended-CLF line.

    Raises:
        CLFParseError: for malformed lines.
    """
    match = _LINE_RE.match(line)
    if not match:
        raise CLFParseError(f"unparseable log line: {line!r}", lineno)
    try:
        timestamp = parse_clf_time(match.group("when"))
    except ValueError as exc:
        raise CLFParseError(str(exc), lineno) from exc
    lm_raw = match.group("lm")
    last_modified = None
    if lm_raw not in (None, "-", ""):
        try:
            last_modified = parse_http_date(lm_raw)
        except HTTPDateError as exc:
            raise CLFParseError(str(exc), lineno) from exc
    size_raw = match.group("size")
    return TraceRecord(
        timestamp=timestamp,
        client=match.group("client"),
        path=match.group("path"),
        status=int(match.group("status")),
        size=0 if size_raw == "-" else int(size_raw),
        last_modified=last_modified,
    )


def write_clf(records: Iterable[TraceRecord], stream: TextIO) -> int:
    """Write records to ``stream`` in extended CLF; returns lines written."""
    count = 0
    for record in records:
        stream.write(format_record(record))
        stream.write("\n")
        count += 1
    return count


def read_clf(stream: TextIO, name: str = "trace") -> Trace:
    """Read an extended-CLF stream into a :class:`Trace`.

    Blank lines and ``#`` comments are skipped.

    Raises:
        CLFParseError: on the first malformed line.
    """
    return Trace(iter_clf(stream), name=name)


def iter_clf(stream: TextIO) -> Iterator[TraceRecord]:
    """Lazily parse an extended-CLF stream."""
    for lineno, line in enumerate(stream, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        yield parse_record(stripped, lineno)
