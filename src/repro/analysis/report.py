"""Text tables and shape-check reporting for the experiments.

Every experiment renders a text report (tables + ASCII figures) and a
list of :class:`ShapeCheck` results — the paper's qualitative claims
("invalidation is superior until the TTL is quite large", "stale rate
below 5%") evaluated against the measured series.  Benchmarks and tests
assert on the same checks, so "does the reproduction hold" is answered
in exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.runtime import RunStats


@dataclass(frozen=True)
class ShapeCheck:
    """One qualitative claim from the paper, verified or not.

    Attributes:
        name: short identifier (e.g. ``stale-below-5pct``).
        passed: whether the measured data satisfies the claim.
        detail: the numbers behind the verdict, for the report.
    """

    name: str
    passed: bool
    detail: str

    def render(self) -> str:
        """One report line: ``[ok] name: detail``."""
        status = "ok" if self.passed else "FAIL"
        return f"  [{status:4s}] {self.name}: {self.detail}"


@dataclass
class ExperimentReport:
    """The complete output of one experiment run.

    Attributes:
        experiment_id: ``figure2`` ... ``table2``.
        title: the paper's caption-level description.
        rendered: the full text report (tables and ASCII panels).
        checks: shape checks evaluated on the measured data.
        data: machine-readable series/rows for downstream use.
        stats: run instrumentation (wall time, simulated requests,
            workers) attached by ``run_experiment``.  Deliberately not
            part of :meth:`render`, so figure/table output stays
            byte-identical across worker counts and machines.
    """

    experiment_id: str
    title: str
    rendered: str
    checks: list[ShapeCheck] = field(default_factory=list)
    data: dict = field(default_factory=dict)
    stats: Optional[RunStats] = field(default=None, compare=False, repr=False)

    @property
    def all_passed(self) -> bool:
        """True when every shape check holds."""
        return all(c.passed for c in self.checks)

    def failed_checks(self) -> list[ShapeCheck]:
        """The checks that did not hold."""
        return [c for c in self.checks if not c.passed]

    def render(self) -> str:
        """The report plus the check summary."""
        lines = [
            f"== {self.experiment_id}: {self.title} ==",
            "",
            self.rendered,
            "",
            "shape checks:",
        ]
        lines.extend(check.render() for check in self.checks)
        verdict = "ALL CHECKS PASSED" if self.all_passed else "CHECKS FAILED"
        lines.append(f"  -> {verdict}")
        return "\n".join(lines)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    *,
    title: str = "",
) -> str:
    """Render an aligned text table.

    Numeric cells are right-aligned; text cells left-aligned.
    """
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells)) if cells
        else len(headers[i])
        for i in range(len(headers))
    ]

    def align(value: str, i: int, numeric: bool) -> str:
        return value.rjust(widths[i]) if numeric else value.ljust(widths[i])

    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for raw, row in zip(rows, cells):
        lines.append(
            "  ".join(
                align(cell, i, isinstance(raw[i], (int, float)))
                for i, cell in enumerate(row)
            )
        )
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 10000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def pct(value: float) -> str:
    """Format a rate as a percentage string."""
    return f"{100.0 * value:.2f}%"
