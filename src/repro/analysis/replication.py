"""Multi-seed replication: are the reproduced shapes seed-robust?

The paper reports single runs; with synthetic workloads we can do
better — rerun any scalar metric across independent seeds and summarize
it with mean, standard deviation, and a normal-approximation confidence
interval.  The robustness tests use this to show that the headline
results (the order-of-magnitude bandwidth ratio, the server-load
crossover) are properties of the workload *model*, not of one lucky
seed.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Callable, Sequence

#: Two-sided z value for a 95% normal confidence interval.
_Z95 = 1.96


@dataclass(frozen=True)
class Replication:
    """Summary of one scalar metric across seeds.

    Attributes:
        values: the per-seed observations, in seed order.
        mean: sample mean.
        stdev: sample standard deviation (0 for a single observation).
        ci_half_width: half-width of the 95% CI on the mean.
    """

    values: tuple[float, ...]
    mean: float
    stdev: float
    ci_half_width: float

    @property
    def ci_low(self) -> float:
        """Lower edge of the 95% confidence interval."""
        return self.mean - self.ci_half_width

    @property
    def ci_high(self) -> float:
        """Upper edge of the 95% confidence interval."""
        return self.mean + self.ci_half_width

    @property
    def relative_spread(self) -> float:
        """stdev / |mean| — dimensionless run-to-run variability."""
        return self.stdev / abs(self.mean) if self.mean else math.inf

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.mean:.4g} ± {self.ci_half_width:.2g} "
            f"(95% CI over {len(self.values)} seeds, "
            f"stdev {self.stdev:.2g})"
        )


def replicate(
    metric: Callable[[int], float],
    seeds: Sequence[int],
) -> Replication:
    """Evaluate ``metric(seed)`` for every seed and summarize.

    Raises:
        ValueError: for an empty seed list.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    values = tuple(float(metric(seed)) for seed in seeds)
    mean = statistics.fmean(values)
    stdev = statistics.stdev(values) if len(values) > 1 else 0.0
    half = _Z95 * stdev / math.sqrt(len(values)) if len(values) > 1 else 0.0
    return Replication(values=values, mean=mean, stdev=stdev,
                       ci_half_width=half)


def all_hold(
    predicate: Callable[[int], bool],
    seeds: Sequence[int],
) -> tuple[bool, list[int]]:
    """Evaluate a boolean claim per seed.

    Returns:
        ``(every seed passed, the seeds that failed)``.

    Raises:
        ValueError: for an empty seed list.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    failures = [seed for seed in seeds if not predicate(seed)]
    return (not failures, failures)
