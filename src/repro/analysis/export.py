"""CSV export of sweeps and experiment data.

The ASCII panels are for the terminal; anyone who wants to re-plot the
figures with real tooling (gnuplot, matplotlib, a spreadsheet) gets the
underlying series here.  One row per swept parameter, one column per
metric, plus the invalidation baseline repeated in its own columns so a
single file is self-contained.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence, Union

from repro.analysis.sweep import SweepResult


def write_rows_csv(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    path: Union[str, Path],
) -> int:
    """Write a plain headers+rows table as CSV; returns rows written.

    Raises:
        ValueError: when a row's width does not match the header.
    """
    path = Path(path)
    for i, row in enumerate(rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, header has {len(headers)}"
            )
    with path.open("w", newline="", encoding="ascii") as stream:
        writer = csv.writer(stream)
        writer.writerow(headers)
        writer.writerows(rows)
    return len(rows)


def write_sweep_csv(
    sweep: SweepResult,
    path: Union[str, Path],
    parameter_name: str = "parameter",
) -> int:
    """Export one sweep (plus its invalidation baseline) to CSV.

    Columns: the parameter, every metric of the sweep's points, and —
    when the sweep carries an invalidation baseline — one
    ``invalidation_<metric>`` column per metric with the constant
    baseline value.

    Returns:
        The number of data rows written.

    Raises:
        ValueError: for a sweep with no points.
    """
    if not sweep.points:
        raise ValueError("cannot export an empty sweep")
    metric_names = sorted(sweep.points[0].metrics)
    headers = [parameter_name, *metric_names]
    baseline_names = sorted(sweep.invalidation) if sweep.invalidation else []
    headers.extend(f"invalidation_{name}" for name in baseline_names)

    rows = []
    for point in sweep.points:
        row = [point.parameter]
        row.extend(point.metrics[name] for name in metric_names)
        row.extend(sweep.invalidation[name] for name in baseline_names)
        rows.append(row)
    return write_rows_csv(headers, rows, path)


def dump_experiment_data(
    data: dict,
    directory: Union[str, Path],
    experiment_id: str,
) -> list[Path]:
    """Write an experiment's ``data`` dict as CSV files.

    Three value shapes are handled:

    * a dict of equal-length lists (a figure's series) becomes one CSV
      with one column per key;
    * a list of row tuples (a table) becomes one CSV with positional
      ``c0..cN`` headers;
    * scalars are collected into ``<id>_summary.csv``.

    Returns:
        The paths written, in creation order.

    Raises:
        ValueError: when a series dict has ragged lengths.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    scalars: list[tuple[str, object]] = []
    for key, value in data.items():
        safe_key = key.replace("/", "_")
        if isinstance(value, dict) and value and all(
            isinstance(v, (list, tuple)) for v in value.values()
        ):
            lengths = {len(v) for v in value.values()}
            if len(lengths) != 1:
                raise ValueError(
                    f"ragged series under {key!r}: lengths {sorted(lengths)}"
                )
            headers = list(value)
            rows = list(zip(*(value[h] for h in headers)))
            path = directory / f"{experiment_id}_{safe_key}.csv"
            write_rows_csv(headers, rows, path)
            written.append(path)
        elif isinstance(value, (list, tuple)) and value and all(
            isinstance(row, (list, tuple)) for row in value
        ):
            width = max(len(row) for row in value)
            headers = [f"c{i}" for i in range(width)]
            rows = [list(row) + [""] * (width - len(row)) for row in value]
            path = directory / f"{experiment_id}_{safe_key}.csv"
            write_rows_csv(headers, rows, path)
            written.append(path)
        elif isinstance(value, (int, float, str)) or value is None:
            scalars.append((key, value))
        elif isinstance(value, (list, tuple)):
            scalars.append((key, ";".join(str(v) for v in value)))
        # Nested non-series dicts (e.g. figure1's scenario map) are
        # flattened one level into scalars.
        elif isinstance(value, dict):
            for inner_key, inner in value.items():
                scalars.append((f"{key}.{inner_key}", str(inner)))
    if scalars:
        path = directory / f"{experiment_id}_summary.csv"
        write_rows_csv(("key", "value"), scalars, path)
        written.append(path)
    return written


def read_csv_rows(path: Union[str, Path]) -> tuple[list[str], list[list[str]]]:
    """Read back a CSV written by this module: (headers, string rows)."""
    path = Path(path)
    with path.open("r", newline="", encoding="ascii") as stream:
        reader = csv.reader(stream)
        headers = next(reader)
        return headers, [row for row in reader]
