"""Parameter sweeps over consistency protocols.

Every figure in the paper's evaluation is a sweep: the Alex update
threshold from 0-100% or the TTL from 0-500 hours, plotted against the
invalidation protocol's (parameter-free) horizontal line.  Figure 6 adds
averaging over the three campus traces.  This module runs those sweeps
and returns tidy per-point metric dictionaries.

Sweep points are independent simulations, so :func:`sweep_protocol`
executes them through the :mod:`repro.runtime` engine: pass ``workers``
(or set ``REPRO_WORKERS`` / :func:`repro.runtime.default_workers`) to
fan the grid out across processes.  The serial path (``workers=1``, the
default) and the parallel path produce bit-identical
:class:`SweepResult` values; only the attached :class:`RunStats`
instrumentation differs, and it is excluded from equality.

The containers are plain data and easy to build by hand, which is how
the report/plot layers are tested:

>>> point = SweepPoint(parameter=50.0, metrics={"total_mb": 12.5})
>>> point["total_mb"]
12.5
>>> sweep = SweepResult(
...     family="alex",
...     points=[SweepPoint(0.0, {"ops": 400.0}), SweepPoint(50.0, {"ops": 80.0})],
...     invalidation={"ops": 100.0},
... )
>>> sweep.parameters()
[0.0, 50.0]
>>> sweep.series("ops")
[400.0, 80.0]
>>> crossover_parameter(sweep, "ops")
50.0
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.core.clock import hours
from repro.core.costs import DEFAULT_COSTS, MessageCosts
from repro.core.protocols import (
    AlexProtocol,
    InvalidationProtocol,
    TTLProtocol,
)
from repro.core.protocols.base import ConsistencyProtocol
from repro.core.results import SimulationResult, average_results
from repro.core.simulator import SimulatorMode
from repro.faults.plan import FaultPlan
from repro.obs import clock as obs_clock
from repro.obs import registry as obs_metrics
from repro.obs import trace as obs_trace
from repro.fastpath import resolve_engine
from repro.runtime import RunStats, map_ordered, record, resolve_workers
from repro.verify.oracle import checked_simulate, is_enabled
from repro.workload.base import Workload

#: Alex thresholds (percent) matching the figures' x axis, 0-100.
ALEX_THRESHOLDS_PERCENT: tuple[float, ...] = tuple(range(0, 101, 5))
#: TTL values (hours) matching the figures' x axis, 0-500.
TTL_HOURS: tuple[float, ...] = tuple(range(0, 501, 25))

#: Grid marker for the invalidation baseline task (so the baseline
#: parallelizes alongside the swept points).
_BASELINE = object()


@dataclass
class SweepPoint:
    """One sweep sample: a parameter value and the averaged metrics."""

    parameter: float
    metrics: dict[str, float]

    def __getitem__(self, key: str) -> float:
        return self.metrics[key]


@dataclass
class SweepResult:
    """A full sweep of one protocol family plus the invalidation baseline.

    Attributes:
        family: ``alex`` or ``ttl`` (or a custom label).
        points: per-parameter averaged metrics, in parameter order.
        invalidation: averaged metrics of the invalidation protocol on
            the same workloads (the horizontal line in every figure).
        stats: run instrumentation for the sweep that produced this
            result (None for hand-built results).  Excluded from
            equality: identical sweeps compare equal however long they
            took and however many workers ran them.
    """

    family: str
    points: list[SweepPoint]
    invalidation: dict[str, float] = field(default_factory=dict)
    stats: Optional[RunStats] = field(
        default=None, compare=False, repr=False
    )

    def parameters(self) -> list[float]:
        """The swept parameter values."""
        return [p.parameter for p in self.points]

    def series(self, key: str) -> list[float]:
        """One metric across the sweep (e.g. ``total_mb``)."""
        return [p.metrics[key] for p in self.points]

    def point_at(self, parameter: float) -> SweepPoint:
        """The sweep point for an exact parameter value.

        Raises:
            KeyError: when the parameter was not swept.
        """
        for p in self.points:
            if p.parameter == parameter:
                return p
        raise KeyError(f"parameter {parameter!r} not in sweep")


def verify_run(
    workload: Workload,
    protocol: ConsistencyProtocol,
    mode: SimulatorMode,
    costs: MessageCosts = DEFAULT_COSTS,
    faults: Optional[FaultPlan] = None,
) -> SimulationResult:
    """Run one workload, self-checking through the consistency oracle.

    This is the oracle hook for every sweep task: it delegates to
    :func:`repro.verify.checked_simulate`, which replays the run through
    the brute-force :class:`~repro.verify.spec.SpecModel` and raises
    :class:`~repro.verify.ConsistencyViolation` on any counter,
    bandwidth-ledger, or event divergence — but only when verification is
    enabled (``--verify`` / ``REPRO_VERIFY=1``).  Forked sweep workers
    inherit the enable flag from the parent process, so each worker
    verifies its own grid points.  A ``faults`` plan is forwarded intact
    — under the oracle, both the simulator and the spec replay it.
    """
    return checked_simulate(
        workload.server(),
        protocol,
        workload.requests,
        mode,
        costs=costs,
        end_time=workload.duration,
        faults=faults,
    )


def run_protocol(
    workloads: Sequence[Workload],
    protocol_factory: Callable[[], ConsistencyProtocol],
    mode: SimulatorMode,
    costs: MessageCosts = DEFAULT_COSTS,
    faults: Optional[FaultPlan] = None,
) -> dict[str, float]:
    """Run one protocol over every workload and average the metrics.

    A fresh protocol instance is built per workload (protocols may hold
    adaptive state).  Averaging weighs each workload equally, as Figure 6
    does for FAS/HCS/DAS.  Each run goes through :func:`verify_run`, so
    an enabled oracle checks every simulation behind every sweep point.
    The same ``faults`` plan is applied to every workload; its schedule
    still differs per workload because it compiles against each
    workload's own modification feed.
    """
    results = []
    for workload in workloads:
        results.append(
            verify_run(workload, protocol_factory(), mode, costs, faults)
        )
    return average_results(results)


def sweep_protocol(
    workloads: Sequence[Workload],
    make_protocol: Callable[[float], ConsistencyProtocol],
    parameters: Sequence[float],
    mode: SimulatorMode,
    *,
    family: str,
    costs: MessageCosts = DEFAULT_COSTS,
    include_invalidation: bool = True,
    workers: Optional[int] = None,
    faults: Optional[FaultPlan] = None,
) -> SweepResult:
    """Sweep ``make_protocol(parameter)`` over ``parameters``.

    Each grid point (and the invalidation baseline) is an independent
    task run through :func:`repro.runtime.map_ordered`: serial when the
    resolved worker count is 1, forked across a process pool otherwise,
    with results reassembled in parameter order either way.  The
    returned result carries :class:`~repro.runtime.RunStats`
    instrumentation and is also reported to any active
    :func:`repro.runtime.collecting` context.

    Args:
        workloads: the workloads to average over (fresh protocol
            instance per workload).
        make_protocol: parameter -> protocol factory.
        parameters: the grid, in presentation order.
        mode: base or optimized simulator behaviour.
        costs: byte cost model.
        include_invalidation: also run the invalidation baseline.
        workers: process-pool size; None resolves via
            :func:`repro.runtime.resolve_workers` (flag > default >
            ``REPRO_WORKERS`` > serial).
        faults: optional :class:`~repro.faults.FaultPlan` applied to
            every run in the sweep (grid points and baseline alike), so
            the whole grid experiences the *same* delivery faults.
    """
    resolved = resolve_workers(workers)
    started = obs_clock.monotonic()

    tasks: list = list(parameters)
    if include_invalidation:
        tasks.append(_BASELINE)

    def run_task(task):
        if task is _BASELINE:
            return run_protocol(
                workloads, InvalidationProtocol, mode, costs, faults
            )
        return SweepPoint(
            parameter=task,
            metrics=run_protocol(
                workloads, lambda: make_protocol(task), mode, costs, faults
            ),
        )

    outcomes = map_ordered(run_task, tasks, workers=resolved)

    invalidation: dict[str, float] = {}
    if include_invalidation:
        invalidation = outcomes.pop()
    points: list[SweepPoint] = outcomes

    simulated = sum(
        round(p.metrics["requests"]) * len(workloads) for p in points
    )
    if invalidation:
        simulated += round(invalidation["requests"]) * len(workloads)
    stats = RunStats(
        wall_seconds=obs_clock.monotonic() - started,
        simulated_requests=simulated,
        workers=resolved,
        grid_points=len(points),
        peak_grid_size=len(points),
        verified_runs=len(tasks) * len(workloads) if is_enabled() else 0,
        engine=resolve_engine(),
    )
    record(stats)
    obs_metrics.set_gauge("sweep.grid_points", float(len(points)))
    obs_trace.span(
        "sweep.run",
        stats.wall_seconds,
        family=family,
        points=len(points),
        workers=resolved,
    )
    return SweepResult(
        family=family, points=points, invalidation=invalidation, stats=stats
    )


def sweep_alex(
    workloads: Sequence[Workload],
    mode: SimulatorMode,
    thresholds_percent: Sequence[float] = ALEX_THRESHOLDS_PERCENT,
    costs: MessageCosts = DEFAULT_COSTS,
    workers: Optional[int] = None,
    faults: Optional[FaultPlan] = None,
) -> SweepResult:
    """The Alex update-threshold sweep (x axis of panels (a))."""
    return sweep_protocol(
        workloads,
        AlexProtocol.from_percent,
        thresholds_percent,
        mode,
        family="alex",
        costs=costs,
        workers=workers,
        faults=faults,
    )


def sweep_ttl(
    workloads: Sequence[Workload],
    mode: SimulatorMode,
    ttl_hours: Sequence[float] = TTL_HOURS,
    costs: MessageCosts = DEFAULT_COSTS,
    workers: Optional[int] = None,
    faults: Optional[FaultPlan] = None,
) -> SweepResult:
    """The TTL sweep in hours (x axis of panels (b))."""
    return sweep_protocol(
        workloads,
        lambda h: TTLProtocol(hours(h)),
        ttl_hours,
        mode,
        family="ttl",
        costs=costs,
        workers=workers,
        faults=faults,
    )


def crossover_parameter(
    sweep: SweepResult, key: str, threshold: Optional[float] = None
) -> Optional[float]:
    """First swept parameter at which ``key`` drops to/below a level.

    The level defaults to the invalidation baseline's value of the same
    metric — e.g. "Alex requires an update threshold of at least 64% in
    order to achieve the same server load as the invalidation protocol".

    Returns:
        The parameter value, or None when the series never crosses.
    """
    level = threshold if threshold is not None else sweep.invalidation[key]
    for point in sweep.points:
        if point.metrics[key] <= level:
            return point.parameter
    return None
