"""Parameter sweeps over consistency protocols.

Every figure in the paper's evaluation is a sweep: the Alex update
threshold from 0-100% or the TTL from 0-500 hours, plotted against the
invalidation protocol's (parameter-free) horizontal line.  Figure 6 adds
averaging over the three campus traces.  This module runs those sweeps
and returns tidy per-point metric dictionaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.core.clock import hours
from repro.core.costs import DEFAULT_COSTS, MessageCosts
from repro.core.protocols import (
    AlexProtocol,
    InvalidationProtocol,
    TTLProtocol,
)
from repro.core.protocols.base import ConsistencyProtocol
from repro.core.results import average_results
from repro.core.simulator import SimulatorMode, simulate
from repro.workload.base import Workload

#: Alex thresholds (percent) matching the figures' x axis, 0-100.
ALEX_THRESHOLDS_PERCENT: tuple[float, ...] = tuple(range(0, 101, 5))
#: TTL values (hours) matching the figures' x axis, 0-500.
TTL_HOURS: tuple[float, ...] = tuple(range(0, 501, 25))


@dataclass
class SweepPoint:
    """One sweep sample: a parameter value and the averaged metrics."""

    parameter: float
    metrics: dict[str, float]

    def __getitem__(self, key: str) -> float:
        return self.metrics[key]


@dataclass
class SweepResult:
    """A full sweep of one protocol family plus the invalidation baseline.

    Attributes:
        family: ``alex`` or ``ttl`` (or a custom label).
        points: per-parameter averaged metrics, in parameter order.
        invalidation: averaged metrics of the invalidation protocol on
            the same workloads (the horizontal line in every figure).
    """

    family: str
    points: list[SweepPoint]
    invalidation: dict[str, float] = field(default_factory=dict)

    def parameters(self) -> list[float]:
        """The swept parameter values."""
        return [p.parameter for p in self.points]

    def series(self, key: str) -> list[float]:
        """One metric across the sweep (e.g. ``total_mb``)."""
        return [p.metrics[key] for p in self.points]

    def point_at(self, parameter: float) -> SweepPoint:
        """The sweep point for an exact parameter value.

        Raises:
            KeyError: when the parameter was not swept.
        """
        for p in self.points:
            if p.parameter == parameter:
                return p
        raise KeyError(f"parameter {parameter!r} not in sweep")


def run_protocol(
    workloads: Sequence[Workload],
    protocol_factory: Callable[[], ConsistencyProtocol],
    mode: SimulatorMode,
    costs: MessageCosts = DEFAULT_COSTS,
) -> dict[str, float]:
    """Run one protocol over every workload and average the metrics.

    A fresh protocol instance is built per workload (protocols may hold
    adaptive state).  Averaging weighs each workload equally, as Figure 6
    does for FAS/HCS/DAS.
    """
    results = []
    for workload in workloads:
        result = simulate(
            workload.server(),
            protocol_factory(),
            workload.requests,
            mode,
            costs=costs,
            end_time=workload.duration,
        )
        results.append(result)
    return average_results(results)


def sweep_protocol(
    workloads: Sequence[Workload],
    make_protocol: Callable[[float], ConsistencyProtocol],
    parameters: Sequence[float],
    mode: SimulatorMode,
    *,
    family: str,
    costs: MessageCosts = DEFAULT_COSTS,
    include_invalidation: bool = True,
) -> SweepResult:
    """Sweep ``make_protocol(parameter)`` over ``parameters``."""
    points = [
        SweepPoint(
            parameter=param,
            metrics=run_protocol(
                workloads, lambda p=param: make_protocol(p), mode, costs
            ),
        )
        for param in parameters
    ]
    invalidation: dict[str, float] = {}
    if include_invalidation:
        invalidation = run_protocol(
            workloads, InvalidationProtocol, mode, costs
        )
    return SweepResult(family=family, points=points, invalidation=invalidation)


def sweep_alex(
    workloads: Sequence[Workload],
    mode: SimulatorMode,
    thresholds_percent: Sequence[float] = ALEX_THRESHOLDS_PERCENT,
    costs: MessageCosts = DEFAULT_COSTS,
) -> SweepResult:
    """The Alex update-threshold sweep (x axis of panels (a))."""
    return sweep_protocol(
        workloads,
        AlexProtocol.from_percent,
        thresholds_percent,
        mode,
        family="alex",
        costs=costs,
    )


def sweep_ttl(
    workloads: Sequence[Workload],
    mode: SimulatorMode,
    ttl_hours: Sequence[float] = TTL_HOURS,
    costs: MessageCosts = DEFAULT_COSTS,
) -> SweepResult:
    """The TTL sweep in hours (x axis of panels (b))."""
    return sweep_protocol(
        workloads,
        lambda h: TTLProtocol(hours(h)),
        ttl_hours,
        mode,
        family="ttl",
        costs=costs,
    )


def crossover_parameter(
    sweep: SweepResult, key: str, threshold: Optional[float] = None
) -> Optional[float]:
    """First swept parameter at which ``key`` drops to/below a level.

    The level defaults to the invalidation baseline's value of the same
    metric — e.g. "Alex requires an update threshold of at least 64% in
    order to achieve the same server load as the invalidation protocol".

    Returns:
        The parameter value, or None when the series never crosses.
    """
    level = threshold if threshold is not None else sweep.invalidation[key]
    for point in sweep.points:
        if point.metrics[key] <= level:
            return point.parameter
    return None
