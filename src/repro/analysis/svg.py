"""Dependency-free SVG rendering of the figures.

The ASCII panels are great in a terminal but poor in a paper or README.
This module renders the same :class:`~repro.analysis.plots.Series`
objects as standalone SVG line charts — pure string generation, no
plotting library required.  The experiments CLI exposes it via
``--svg DIR``.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.analysis.plots import Series

#: Default stroke colours, cycled across series.
PALETTE = ("#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
           "#8c564b", "#17becf")

_MARGIN_LEFT = 64
_MARGIN_RIGHT = 16
_MARGIN_TOP = 34
_MARGIN_BOTTOM = 56


def _fmt(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 10_000 or abs(value) < 0.01:
        return f"{value:.1e}"
    return f"{value:g}"


def render_svg(
    series: Sequence[Series],
    *,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
    width: int = 560,
    height: int = 340,
    log_y: bool = False,
    y_floor: Optional[float] = None,
) -> str:
    """Render series as a standalone SVG document (a string).

    Mirrors :func:`repro.analysis.plots.ascii_chart`'s interface: same
    series, same log-scale semantics (non-positive values clamp to the
    floor).

    Raises:
        ValueError: when there is nothing to plot or the floor is
            non-positive under ``log_y``.
    """
    points = [(x, y) for s in series for x, y in zip(s.xs, s.ys)]
    if not points:
        raise ValueError("nothing to plot")

    xs = [p[0] for p in points]
    x_min, x_max = min(xs), max(xs)
    if x_max == x_min:
        x_max = x_min + 1.0

    if log_y:
        positive = [p[1] for p in points if p[1] > 0]
        floor = y_floor if y_floor is not None else (
            min(positive) / 10 if positive else 1e-3
        )
        if floor <= 0:
            raise ValueError(f"y_floor must be positive: {floor}")
        transform = lambda y: math.log10(max(y, floor))  # noqa: E731
    else:
        transform = lambda y: y  # noqa: E731

    ty = [transform(p[1]) for p in points]
    y_min, y_max = min(ty), max(ty)
    if y_max == y_min:
        y_max = y_min + 1.0

    plot_w = width - _MARGIN_LEFT - _MARGIN_RIGHT
    plot_h = height - _MARGIN_TOP - _MARGIN_BOTTOM

    def px(x: float) -> float:
        return _MARGIN_LEFT + (x - x_min) / (x_max - x_min) * plot_w

    def py(y: float) -> float:
        ry = (transform(y) - y_min) / (y_max - y_min)
        return _MARGIN_TOP + (1.0 - ry) * plot_h

    parts: list[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        'font-family="sans-serif" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        # Plot frame.
        f'<rect x="{_MARGIN_LEFT}" y="{_MARGIN_TOP}" width="{plot_w}" '
        f'height="{plot_h}" fill="none" stroke="#999"/>',
    ]
    if title:
        parts.append(
            f'<text x="{width / 2:.0f}" y="18" text-anchor="middle" '
            f'font-size="13">{_escape(title)}</text>'
        )

    # Axis extremes.
    y_top = f"1e{y_max:.2f}" if log_y else _fmt(y_max)
    y_bot = f"1e{y_min:.2f}" if log_y else _fmt(y_min)
    parts.extend(
        [
            f'<text x="{_MARGIN_LEFT - 6}" y="{_MARGIN_TOP + 10}" '
            f'text-anchor="end">{y_top}</text>',
            f'<text x="{_MARGIN_LEFT - 6}" y="{_MARGIN_TOP + plot_h}" '
            f'text-anchor="end">{y_bot}</text>',
            f'<text x="{_MARGIN_LEFT}" y="{height - _MARGIN_BOTTOM + 16}" '
            f'text-anchor="middle">{_fmt(x_min)}</text>',
            f'<text x="{_MARGIN_LEFT + plot_w}" '
            f'y="{height - _MARGIN_BOTTOM + 16}" '
            f'text-anchor="middle">{_fmt(x_max)}</text>',
        ]
    )
    if xlabel:
        parts.append(
            f'<text x="{_MARGIN_LEFT + plot_w / 2:.0f}" '
            f'y="{height - _MARGIN_BOTTOM + 32}" text-anchor="middle">'
            f'{_escape(xlabel)}{" [log y]" if log_y else ""}</text>'
        )
    if ylabel:
        parts.append(
            f'<text x="14" y="{_MARGIN_TOP + plot_h / 2:.0f}" '
            f'text-anchor="middle" transform="rotate(-90 14 '
            f'{_MARGIN_TOP + plot_h / 2:.0f})">{_escape(ylabel)}</text>'
        )

    for index, s in enumerate(series):
        colour = PALETTE[index % len(PALETTE)]
        coords = " ".join(
            f"{px(x):.1f},{py(y):.1f}" for x, y in zip(s.xs, s.ys)
        )
        if len(s.xs) > 1:
            parts.append(
                f'<polyline points="{coords}" fill="none" '
                f'stroke="{colour}" stroke-width="1.5"/>'
            )
        for x, y in zip(s.xs, s.ys):
            parts.append(
                f'<circle cx="{px(x):.1f}" cy="{py(y):.1f}" r="2.5" '
                f'fill="{colour}"/>'
            )
        legend_y = height - _MARGIN_BOTTOM + 46
        legend_x = _MARGIN_LEFT + index * (plot_w // max(len(series), 1))
        parts.append(
            f'<rect x="{legend_x}" y="{legend_y - 8}" width="10" '
            f'height="10" fill="{colour}"/>'
        )
        parts.append(
            f'<text x="{legend_x + 14}" y="{legend_y}">'
            f'{_escape(s.label)}</text>'
        )

    parts.append("</svg>")
    return "\n".join(parts)


def write_svg(
    series: Sequence[Series],
    path: Union[str, Path],
    **kwargs,
) -> Path:
    """Render and write an SVG file; returns the path."""
    path = Path(path)
    path.write_text(render_svg(series, **kwargs), encoding="utf-8")
    return path


def dump_experiment_svg(
    data: dict,
    directory: Union[str, Path],
    experiment_id: str,
) -> list[Path]:
    """Render an experiment's series data as SVG charts.

    Every top-level value that is a dict of equal-length lists (the
    convention the experiments use for their series) becomes one chart:
    the first key is taken as the x axis, the remaining keys as lines.
    A log y scale is chosen automatically when all values are positive
    and span more than two decades.

    Returns:
        The paths written.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for key, value in data.items():
        if not (
            isinstance(value, dict)
            and len(value) >= 2
            and all(isinstance(v, (list, tuple)) for v in value.values())
        ):
            continue
        lengths = {len(v) for v in value.values()}
        if len(lengths) != 1 or lengths == {0}:
            continue
        names = list(value)
        xs = [float(v) for v in value[names[0]]]
        series = [
            Series(label=name, xs=xs, ys=[float(v) for v in value[name]])
            for name in names[1:]
        ]
        ys = [y for s in series for y in s.ys]
        log_y = bool(ys) and min(ys) > 0 and max(ys) / min(ys) > 100
        path = directory / f"{experiment_id}_{key.replace('/', '_')}.svg"
        write_svg(
            series, path,
            title=f"{experiment_id}: {key}",
            xlabel=names[0],
            log_y=log_y,
        )
        written.append(path)
    return written


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )
