"""ASCII rendering of the paper's figures.

The experiments print their figures to the terminal, so each panel is an
ASCII scatter/line chart.  Log-scale y axes are supported because every
bandwidth panel in the paper uses one ("Note the use of a log-scale to
display the bandwidth with higher accuracy").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence


@dataclass
class Series:
    """One plotted line: label, x values, y values, and a glyph."""

    label: str
    xs: Sequence[float]
    ys: Sequence[float]
    glyph: str = "*"

    def __post_init__(self) -> None:
        if len(self.xs) != len(self.ys):
            raise ValueError(
                f"series {self.label!r}: {len(self.xs)} xs vs {len(self.ys)} ys"
            )
        if not self.glyph or len(self.glyph) != 1:
            raise ValueError(f"glyph must be a single character: {self.glyph!r}")


_GLYPHS = "*o+x#@%"


def assign_glyphs(labels: Sequence[str]) -> list[str]:
    """Stable glyph assignment for up to seven series."""
    return [_GLYPHS[i % len(_GLYPHS)] for i in range(len(labels))]


def _nice_value(v: float) -> str:
    if v == 0:
        return "0"
    if abs(v) >= 1000 or abs(v) < 0.01:
        return f"{v:.1e}"
    return f"{v:g}"


def ascii_chart(
    series: Sequence[Series],
    *,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
    width: int = 68,
    height: int = 18,
    log_y: bool = False,
    y_floor: Optional[float] = None,
) -> str:
    """Render series onto a character grid.

    Args:
        series: the lines to draw (later series overwrite earlier ones
            where they collide).
        log_y: plot log10(y); non-positive values are clamped to
            ``y_floor`` (or the smallest positive y / 10).
        y_floor: explicit positive floor for the log scale.

    Returns:
        The chart as a multi-line string.

    Raises:
        ValueError: when there is nothing to plot.
    """
    points = [
        (x, y) for s in series for x, y in zip(s.xs, s.ys)
    ]
    if not points:
        raise ValueError("nothing to plot")

    xs = [p[0] for p in points]
    x_min, x_max = min(xs), max(xs)
    if x_max == x_min:
        x_max = x_min + 1.0

    if log_y:
        positive = [p[1] for p in points if p[1] > 0]
        floor = y_floor if y_floor is not None else (
            min(positive) / 10 if positive else 1e-3
        )
        if floor <= 0:
            raise ValueError(f"y_floor must be positive: {floor}")
        transform = lambda y: math.log10(max(y, floor))  # noqa: E731
    else:
        transform = lambda y: y  # noqa: E731

    ty = [transform(p[1]) for p in points]
    y_min, y_max = min(ty), max(ty)
    if y_max == y_min:
        y_max = y_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for s in series:
        for x, y in zip(s.xs, s.ys):
            col = int((x - x_min) / (x_max - x_min) * (width - 1))
            row = int((transform(y) - y_min) / (y_max - y_min) * (height - 1))
            grid[height - 1 - row][col] = s.glyph

    lines: list[str] = []
    if title:
        lines.append(title)
    top_label = (
        f"1e{y_max:.2f}" if log_y else _nice_value(y_max)
    )
    bottom_label = (
        f"1e{y_min:.2f}" if log_y else _nice_value(y_min)
    )
    label_width = max(len(top_label), len(bottom_label)) + 1
    for i, row in enumerate(grid):
        if i == 0:
            prefix = top_label.rjust(label_width)
        elif i == height - 1:
            prefix = bottom_label.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix}|{''.join(row)}")
    lines.append(" " * label_width + "+" + "-" * width)
    x_axis = (
        " " * label_width
        + " "
        + _nice_value(x_min)
        + _nice_value(x_max).rjust(width - len(_nice_value(x_min)) - 1)
    )
    lines.append(x_axis)
    if xlabel or ylabel or log_y:
        lines.append(
            " " * label_width
            + f" x: {xlabel}" + (f"   y: {ylabel}" if ylabel else "")
            + ("  [log y]" if log_y else "")
        )
    legend = "   ".join(f"{s.glyph} {s.label}" for s in series)
    lines.append(" " * label_width + " " + legend)
    return "\n".join(lines)
