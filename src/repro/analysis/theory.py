"""Closed-form models of the protocols, for validating the simulator.

Trace-driven simulators earn trust by agreeing with theory where theory
exists.  For memoryless (Poisson) modification processes several of the
paper's quantities have closed forms; the theory-vs-simulation tests
check the simulator against them, which guards the whole reproduction
against accounting bugs that shape checks alone might miss.

* :func:`ttl_stale_fraction` — the steady-state fraction of cache hits
  that are stale under a TTL protocol when the object changes as a
  Poisson process.
* :func:`ttl_validation_rate` — validations per unit time under dense
  access (one per TTL window).
* :func:`alex_check_times` / :func:`alex_validation_count` — the Alex
  protocol's geometric back-off on a never-changing object: check
  intervals grow by ``(1 + threshold)`` each cycle, so the number of
  checks over a window is logarithmic in the window/age ratio.
* :func:`invalidation_message_bytes` — the invalidation protocol's
  fixed message overhead.
"""

from __future__ import annotations

import math
from typing import List


def ttl_stale_fraction(change_rate: float, ttl: float) -> float:
    """Expected stale fraction of hits for TTL under Poisson changes.

    With changes arriving at rate λ and the entry revalidated every
    ``ttl`` (dense accesses), a hit at offset u into the window is stale
    with probability 1 − e^(−λu); averaging over u ∈ (0, T):

        stale = 1 − (1 − e^(−λT)) / (λT)

    Args:
        change_rate: λ, modifications per second.
        ttl: the TTL window T in seconds.

    Raises:
        ValueError: for negative inputs.
    """
    if change_rate < 0 or ttl < 0:
        raise ValueError("change_rate and ttl must be non-negative")
    x = change_rate * ttl
    if x == 0.0:
        return 0.0
    return 1.0 - (1.0 - math.exp(-x)) / x


def ttl_validation_rate(ttl: float) -> float:
    """Validations per second under dense access: one per window.

    Raises:
        ValueError: for non-positive ttl.
    """
    if ttl <= 0:
        raise ValueError("ttl must be positive")
    return 1.0 / ttl


def alex_check_times(
    initial_age: float, threshold: float, window: float
) -> List[float]:
    """The Alex protocol's validation instants on a never-changing object.

    Starting from a validation at t=0 of an object of age A (dense
    accesses, content never changes, every check returns 304 and leaves
    Last-Modified alone): the k-th check happens when the time since the
    previous check exceeds ``threshold x age-at-that-check``.  Ages grow
    with wall-clock, so successive check times satisfy

        t_{k+1} = t_k + threshold * (A + t_k)

    i.e. ``(A + t)`` grows geometrically by ``(1 + threshold)`` per
    check — the protocol's built-in exponential back-off.

    Returns:
        The check times in ``(0, window]``.

    Raises:
        ValueError: for non-positive age/threshold or negative window.
    """
    if initial_age <= 0:
        raise ValueError(f"initial_age must be positive: {initial_age}")
    if threshold <= 0:
        raise ValueError(f"threshold must be positive: {threshold}")
    if window < 0:
        raise ValueError(f"window must be non-negative: {window}")
    times: List[float] = []
    t = 0.0
    while True:
        t = t + threshold * (initial_age + t)
        if t > window:
            break
        times.append(t)
    return times


def alex_validation_count(
    initial_age: float, threshold: float, window: float
) -> int:
    """Closed-form count of Alex checks over a window (stable object).

    ``(A + t_k) = A (1 + threshold)^k``, so checks fit in the window
    while ``A ((1+θ)^k − 1) <= W``:

        k_max = floor( log(1 + W/A) / log(1 + θ) )

    Raises:
        ValueError: as for :func:`alex_check_times`.
    """
    if initial_age <= 0 or threshold <= 0:
        raise ValueError("initial_age and threshold must be positive")
    if window < 0:
        raise ValueError(f"window must be non-negative: {window}")
    if window == 0:
        return 0
    return int(
        math.floor(
            math.log1p(window / initial_age) / math.log1p(threshold)
            + 1e-9
        )
    )


def invalidation_message_bytes(changes: int, message_size: int = 43) -> int:
    """Total callback bytes: one message per change (Section 4.1).

    Raises:
        ValueError: for negative inputs.
    """
    if changes < 0 or message_size < 0:
        raise ValueError("changes and message_size must be non-negative")
    return changes * message_size
