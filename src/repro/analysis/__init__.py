"""Analysis: parameter sweeps, shape checks, reports, ASCII figures, CSV export."""

from repro.analysis.export import read_csv_rows, write_rows_csv, write_sweep_csv
from repro.analysis.plots import Series, ascii_chart, assign_glyphs
from repro.analysis.replication import Replication, all_hold, replicate
from repro.analysis.theory import (
    alex_check_times,
    alex_validation_count,
    invalidation_message_bytes,
    ttl_stale_fraction,
    ttl_validation_rate,
)
from repro.analysis.report import (
    ExperimentReport,
    ShapeCheck,
    format_table,
    pct,
)
from repro.analysis.svg import dump_experiment_svg, render_svg, write_svg
from repro.analysis.sweep import (
    ALEX_THRESHOLDS_PERCENT,
    TTL_HOURS,
    SweepPoint,
    SweepResult,
    crossover_parameter,
    run_protocol,
    sweep_alex,
    sweep_protocol,
    sweep_ttl,
)

__all__ = [
    "ALEX_THRESHOLDS_PERCENT",
    "read_csv_rows",
    "write_rows_csv",
    "write_sweep_csv",
    "Replication",
    "all_hold",
    "replicate",
    "alex_check_times",
    "alex_validation_count",
    "invalidation_message_bytes",
    "ttl_stale_fraction",
    "ttl_validation_rate",
    "dump_experiment_svg",
    "render_svg",
    "write_svg",
    "TTL_HOURS",
    "ExperimentReport",
    "Series",
    "ShapeCheck",
    "SweepPoint",
    "SweepResult",
    "ascii_chart",
    "assign_glyphs",
    "crossover_parameter",
    "format_table",
    "pct",
    "run_protocol",
    "sweep_alex",
    "sweep_protocol",
    "sweep_ttl",
]
