"""The Boston University modification-log population (Table 2 substrate).

"Each day between March 28 and October 7, Bestavros sampled the server
and recorded all the files that were modified since the previous day.
The logs contain approximately 2,500 file references and 14,000 changes
during that 186 day time period."

We rebuild that population synthetically: ~2,500 files whose types follow
the Table 2 mix and whose modification processes are a two-mode mixture —

* a small **hot** set modified near-daily (these carry most of the 14,000
  changes; 50 files changing daily for 186 days already contribute
  9,300), and
* the **cold** majority changing as a slow Poisson process whose median
  inter-change interval per type is the Table 2 life-span (gif/html 146
  days, jpg 72 days).

The daily-granularity sampler in :mod:`repro.trace.sampler` then replays
Bestavros' measurement procedure over this population, conservative bias
included.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.clock import DAY
from repro.core.objects import ModificationSchedule, ObjectHistory, WebObject
from repro.workload.filetypes import FileTypeModel

#: Length of the BU measurement window (March 28 - October 7).
BU_WINDOW: float = 186 * DAY

_LN2 = float(np.log(2.0))


@dataclass
class BostonPopulation:
    """Builder for the synthetic BU server population.

    Attributes:
        files: population size (paper: ≈2,500 file references).
        window: measurement window in seconds (paper: 186 days).
        hot_fraction: fraction of files in the near-daily-change mode.
        hot_interval: mean inter-change interval of hot files.
        seed: RNG seed.
        type_model: file-type registry (Table 2 by default, dynamic
            content excluded — the BU logs cover files with mtimes).
    """

    files: int = 2500
    window: float = BU_WINDOW
    hot_fraction: float = 0.02
    hot_interval: float = 1.5 * DAY
    seed: int = 0
    type_model: Optional[FileTypeModel] = None
    _model: FileTypeModel = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.files <= 0:
            raise ValueError(f"files must be positive: {self.files}")
        if self.window <= 0:
            raise ValueError(f"window must be positive: {self.window}")
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ValueError(
                f"hot_fraction outside [0, 1]: {self.hot_fraction}"
            )
        if self.hot_interval <= 0:
            raise ValueError(
                f"hot_interval must be positive: {self.hot_interval}"
            )
        self._model = self.type_model or FileTypeModel(include_dynamic=False)

    def _poisson_times(
        self, rng: np.random.Generator, mean_interval: float
    ) -> list[float]:
        """Poisson-process change times over (0, window)."""
        times: list[float] = []
        t = float(rng.exponential(mean_interval))
        while t < self.window:
            times.append(t)
            t += float(rng.exponential(mean_interval))
        return times

    def build(self) -> list[ObjectHistory]:
        """Generate the population deterministically from the seed."""
        rng = np.random.default_rng(self.seed)
        model = self._model
        type_names = model.sample_types(rng, self.files)
        hot = rng.random(self.files) < self.hot_fraction
        histories: list[ObjectHistory] = []
        for i in range(self.files):
            tname = type_names[i]
            spec = model.spec(tname)
            if hot[i]:
                times = self._poisson_times(rng, self.hot_interval)
            elif spec.median_lifespan_days is not None:
                # Exponential inter-change with the Table 2 median:
                # median of Exp(mean m) is m*ln2, so m = median/ln2.
                mean_interval = spec.median_lifespan_days * DAY / _LN2
                times = self._poisson_times(rng, mean_interval)
            else:
                times = []
            age = model.sample_initial_age(rng, tname)
            created = -float(age)
            obj = WebObject(
                object_id=f"/bu/file{i:04d}.{tname}",
                size=model.sample_size(rng, tname),
                file_type=tname,
                created=created,
            )
            histories.append(
                ObjectHistory(obj, ModificationSchedule(created, times))
            )
        return histories

    def total_changes(self, histories: list[ObjectHistory]) -> int:
        """In-window change count of a built population."""
        return sum(
            h.schedule.changes_in(0.0, self.window) for h in histories
        )
