"""Synthetic campus-server workloads matching Table 1.

The modified-workload simulator (Figures 6-8) is driven by traces of
three Harvard campus Web servers.  We cannot obtain the 1995 logs, so
this module synthesizes workloads that reproduce every statistic the
paper gives about them (Table 1) together with the structural
observations the paper says matter:

* request popularity is Zipf-skewed, not uniform;
* mutability is anti-correlated with popularity (Bestavros);
* lifetimes are bimodal — most files never change, a few change in
  bursts;
* per-type sizes and pre-trace ages follow Table 2.

A note on Table 1's arithmetic: with "mutable" read as "changed at least
once" and "very mutable" as "changed more than 5 times", the HCS row is
slightly over-constrained (133 mutable files of which 30 change ≥6 times
forces ≥283 changes, but the row reports 260).  The generator therefore
treats the change total as a floor-respecting target: DAS and FAS are
matched exactly; HCS lands at the feasible minimum (≈9% above the
reported total).  EXPERIMENTS.md records the deltas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.clock import DAY
from repro.core.objects import ModificationSchedule, ObjectHistory, WebObject
from repro.workload.base import Workload, sorted_request_times
from repro.workload.bestavros import choose_mutable_files_banded
from repro.workload.bimodal import mixed_change_times, stable_change_times
from repro.workload.filetypes import FileTypeModel, lognormal_with_mean
from repro.workload.zipf import ZipfSampler

#: Number of changes above which a file is "very mutable" (Table 1:
#: "observed to change more than 5 times").
VERY_MUTABLE_CHANGES: int = 6


@dataclass(frozen=True)
class CampusServerSpec:
    """One Table 1 row: the target statistics for a campus server."""

    name: str
    files: int
    requests: int
    duration: float
    pct_remote: float
    total_changes: int
    pct_mutable: float
    pct_very_mutable: float

    def __post_init__(self) -> None:
        if self.files <= 0 or self.requests < 0:
            raise ValueError("files must be positive, requests non-negative")
        if self.duration <= 0:
            raise ValueError(f"duration must be positive: {self.duration}")
        for pct in (self.pct_remote, self.pct_mutable, self.pct_very_mutable):
            if not 0.0 <= pct <= 100.0:
                raise ValueError(f"percentage outside [0, 100]: {pct}")
        if self.pct_very_mutable > self.pct_mutable:
            raise ValueError("pct_very_mutable cannot exceed pct_mutable")

    @property
    def n_mutable(self) -> int:
        """Number of files that change at least once."""
        return int(round(self.files * self.pct_mutable / 100.0))

    @property
    def n_very_mutable(self) -> int:
        """Number of files that change more than 5 times."""
        return min(
            int(round(self.files * self.pct_very_mutable / 100.0)),
            self.n_mutable,
        )

    @property
    def min_feasible_changes(self) -> int:
        """Smallest change total consistent with the mutability counts."""
        plain = self.n_mutable - self.n_very_mutable
        return plain + VERY_MUTABLE_CHANGES * self.n_very_mutable

    @property
    def target_changes(self) -> int:
        """The change total the generator will actually produce."""
        return max(self.total_changes, self.min_feasible_changes)


#: DAS — the Division of Applied Sciences server ("think, 'College of
#: Engineering'").
DAS = CampusServerSpec(
    "DAS", files=1403, requests=30_093, duration=30 * DAY,
    pct_remote=84.0, total_changes=321, pct_mutable=6.83,
    pct_very_mutable=2.61,
)
#: FAS — the university web server (most popular, fewest mutable files).
FAS = CampusServerSpec(
    "FAS", files=290, requests=56_660, duration=30 * DAY,
    pct_remote=39.0, total_changes=11, pct_mutable=2.41,
    pct_very_mutable=0.0,
)
#: HCS — the Harvard Computer Society server; the paper's text analyses
#: it over 25 days ("573 files changing 260 times over 25 days").
HCS = CampusServerSpec(
    "HCS", files=573, requests=32_546, duration=25 * DAY,
    pct_remote=50.0, total_changes=260, pct_mutable=23.3,
    pct_very_mutable=5.22,
)

#: All three campus servers, in the order Table 1 lists them.
CAMPUS_SERVERS: tuple[CampusServerSpec, ...] = (DAS, FAS, HCS)

_EXTENSIONS = {"gif": "gif", "html": "html", "jpg": "jpg",
               "cgi": "cgi", "other": "dat"}


@dataclass
class CampusWorkload:
    """Builder for one synthetic campus-server workload.

    Attributes:
        spec: the Table 1 row to match.
        seed: RNG seed.
        zipf_s: request popularity exponent.
        mutability_bias: strength of the within-band popularity↔mutability
            anti-correlation (0 disables it; see
            :func:`repro.workload.bestavros.choose_mutable_files_banded`).
        type_model: file-type registry; defaults to Table 2 with dynamic
            (cgi) content excluded, since the Table 1 statistics cover
            the servers' file populations.
        request_scale: multiplier on the spec's request count, letting
            tests and benchmarks run the same shape at reduced volume.
        mean_mutable_age: mean pre-trace age of ordinary mutable files.
        mean_very_mutable_age: mean pre-trace age of very mutable files.
        burst_span: window over which a very-mutable file's burst of
            edits spreads.  The default (60% of the trace, capped at 18
            days) spaces burst edits a couple of days apart, so a file
            with routine traffic is requested between edits — the regime
            in which the invalidation protocol retransmits per edit while
            an adaptive cache coalesces them.
        top_exclude / bottom_exclude: popularity bands never made
            mutable (most-popular files change least; changes to
            never-requested files are unobservable in a request log).
        dynamic_fraction: fraction of requests redirected to dynamically
            generated (non-cacheable cgi) pages.  The paper's Microsoft
            trace measured 10% and called the trend out as future work
            (Section 5); the default of 0 reproduces the paper's
            file-only simulations.  Dynamic objects are extra objects on
            top of the Table 1 file population, so the static-file
            statistics are unaffected.
    """

    spec: CampusServerSpec
    seed: int = 0
    zipf_s: float = 0.9
    mutability_bias: float = 0.6
    type_model: Optional[FileTypeModel] = None
    request_scale: float = 1.0
    mean_mutable_age: float = 90 * DAY
    mean_very_mutable_age: float = 40 * DAY
    burst_span: Optional[float] = None
    top_exclude: float = 0.08
    bottom_exclude: float = 0.30
    dynamic_fraction: float = 0.0
    _model: FileTypeModel = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.request_scale <= 0:
            raise ValueError(
                f"request_scale must be positive: {self.request_scale}"
            )
        if not 0.0 <= self.dynamic_fraction < 1.0:
            raise ValueError(
                f"dynamic_fraction must be in [0, 1): {self.dynamic_fraction}"
            )
        self._model = self.type_model or FileTypeModel(include_dynamic=False)

    def _change_counts(self, rng: np.random.Generator) -> np.ndarray:
        """Per-mutable-file change counts meeting the Table 1 constraints."""
        spec = self.spec
        n_mut, n_very = spec.n_mutable, spec.n_very_mutable
        counts = np.ones(n_mut, dtype=int)
        counts[:n_very] = VERY_MUTABLE_CHANGES
        surplus = spec.target_changes - int(counts.sum())
        if surplus > 0 and n_mut > 0:
            # Spread extra changes, favouring the very-mutable files, while
            # keeping plain-mutable files below the very-mutable cutoff.
            weights = np.ones(n_mut)
            weights[:n_very] = 3.0
            weights /= weights.sum()
            extra = rng.multinomial(surplus, weights)
            if n_very < n_mut:
                plain = extra[n_very:]
                cap = VERY_MUTABLE_CHANGES - 1 - counts[n_very:]
                overflow = int(np.maximum(plain - cap, 0).sum())
                extra[n_very:] = np.minimum(plain, cap)
                if overflow and n_very:
                    extra[:n_very] += rng.multinomial(
                        overflow, np.full(n_very, 1.0 / n_very)
                    )
                elif overflow:
                    extra[0] += overflow  # no very-mutable bucket: accept
            counts += extra
        return counts

    def build(self) -> Workload:
        """Generate the workload deterministically from the seed."""
        rng = np.random.default_rng(self.seed)
        spec = self.spec
        model = self._model

        type_names = model.sample_types(rng, spec.files)
        sizes = [model.sample_size(rng, t) for t in type_names]

        n_mut = spec.n_mutable
        mutable_ranks = choose_mutable_files_banded(
            rng, spec.files, n_mut,
            top_exclude=self.top_exclude,
            bottom_exclude=self.bottom_exclude,
            bias=self.mutability_bias,
        )
        # Slot 0..n_very-1 of the change-count vector are the very-mutable
        # files; give them the most popular mutable ranks.  Actively
        # edited pages are also actively read — and a change the request
        # stream never straddles would be invisible to Table 1's
        # observation method in the first place.
        counts_by_slot = self._change_counts(rng)
        change_count = np.zeros(spec.files, dtype=int)
        for slot, rank in enumerate(mutable_ranks):
            change_count[rank] = counts_by_slot[slot]

        histories: list[ObjectHistory] = []
        for i in range(spec.files):
            tname = type_names[i]
            n_changes = int(change_count[i])
            if n_changes >= VERY_MUTABLE_CHANGES:
                age = max(
                    lognormal_with_mean(rng, self.mean_very_mutable_age, 0.6),
                    DAY,
                )
                span = self.burst_span or min(0.6 * spec.duration, 18 * DAY)
                times = mixed_change_times(
                    rng, n_changes, spec.duration,
                    burst_fraction=0.7, burst_span=span,
                )
            elif n_changes > 0:
                age = max(
                    lognormal_with_mean(rng, self.mean_mutable_age, 0.6), DAY
                )
                times = stable_change_times(rng, n_changes, spec.duration)
            else:
                age = model.sample_initial_age(rng, tname)
                times = []
            created = -float(age)
            obj = WebObject(
                object_id=(
                    f"/{spec.name.lower()}/doc{i:04d}.{_EXTENSIONS[tname]}"
                ),
                size=sizes[i],
                file_type=tname,
                created=created,
            )
            histories.append(
                ObjectHistory(obj, ModificationSchedule(created, times))
            )

        # Dynamic (cgi) pages, if requested, are additional objects on
        # top of the static file population.
        dynamic_ids: list[str] = []
        if self.dynamic_fraction > 0:
            n_dynamic = max(1, int(round(spec.files * 0.1)))
            for j in range(n_dynamic):
                size = max(64, int(round(rng.lognormal(
                    mean=np.log(5980) - 0.5 * 0.8**2, sigma=0.8))))
                obj = WebObject(
                    object_id=f"/{spec.name.lower()}/cgi-bin/gen{j:03d}.cgi",
                    size=size,
                    file_type="cgi",
                    created=-DAY,
                    cacheable=False,
                )
                histories.append(ObjectHistory(obj))
                dynamic_ids.append(obj.object_id)

        n_requests = int(round(spec.requests * self.request_scale))
        sampler = ZipfSampler(spec.files, self.zipf_s)
        times = sorted_request_times(rng, n_requests, spec.duration)
        ranks = sampler.sample(rng, n_requests)
        is_dynamic = (
            rng.random(n_requests) < self.dynamic_fraction
            if dynamic_ids else np.zeros(n_requests, dtype=bool)
        )
        dynamic_sampler = (
            ZipfSampler(len(dynamic_ids), self.zipf_s) if dynamic_ids else None
        )
        dynamic_picks = (
            dynamic_sampler.sample(rng, n_requests) if dynamic_sampler
            else None
        )
        # Map popularity rank -> file index.  Identity keeps rank 0 as
        # file 0; mutability was assigned against these same ranks.
        request_list = [
            (float(t),
             dynamic_ids[int(dynamic_picks[i])] if is_dynamic[i]
             else histories[int(r)].object_id)
            for i, (t, r) in enumerate(zip(times, ranks))
        ]
        remote = rng.random(n_requests) < spec.pct_remote / 100.0
        remote_pool = [f"host{j:03d}.remote-isp.net" for j in range(97)]
        local_pool = [
            f"ws{j:02d}.{spec.name.lower()}.harvard.edu" for j in range(41)
        ]
        clients = [
            remote_pool[int(rng.integers(len(remote_pool)))]
            if is_remote
            else local_pool[int(rng.integers(len(local_pool)))]
            for is_remote in remote
        ]
        return Workload(
            histories=histories,
            requests=request_list,
            duration=spec.duration,
            clients=clients,
            name=spec.name,
        )


def build_campus_workloads(
    seed: int = 0, request_scale: float = 1.0, **kwargs
) -> dict[str, Workload]:
    """Build all three campus workloads (DAS, FAS, HCS).

    Each server gets a distinct derived seed so the three traces are
    independent, as the real logs were.
    """
    workloads = {}
    for offset, spec in enumerate(CAMPUS_SERVERS):
        builder = CampusWorkload(
            spec, seed=seed * 1000 + offset, request_scale=request_scale,
            **kwargs,
        )
        workloads[spec.name] = builder.build()
    return workloads
