"""Bimodal file-lifetime modelling.

Section 3.0: "Files tend to exhibit bimodal lifetimes.  Either a file
will remain unmodified for a long period of time or it will be modified
frequently within a short time period."

This module generates the two modes:

* :func:`stable_change_times` — at most a couple of isolated changes at
  uniform positions in the window (the long-lived mode);
* :func:`burst_change_times` — a burst of many changes packed into a few
  days (the actively-edited mode that produces the "very mutable" files
  of Table 1).
"""

from __future__ import annotations

import numpy as np

from repro.core.clock import DAY


def stable_change_times(
    rng: np.random.Generator,
    count: int,
    window: float,
) -> list[float]:
    """``count`` isolated change times uniform over ``(0, window)``.

    Used for ordinary mutable files — a page touched once or twice over
    the month.

    Raises:
        ValueError: for negative ``count`` or non-positive ``window``.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative: {count}")
    if window <= 0:
        raise ValueError(f"window must be positive: {window}")
    times = rng.uniform(0.0, window, size=count)
    return sorted(float(t) for t in times)


def burst_change_times(
    rng: np.random.Generator,
    count: int,
    window: float,
    burst_span: float = 3 * DAY,
) -> list[float]:
    """``count`` change times packed into one burst inside the window.

    The burst's start is uniform over the window (clamped so the burst
    fits); individual edits fall at uniform offsets within
    ``burst_span``.  This reproduces the actively-edited mode: a page
    being written changes many times over a few days, then stabilizes.

    Raises:
        ValueError: for negative ``count`` or non-positive spans.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative: {count}")
    if window <= 0 or burst_span <= 0:
        raise ValueError("window and burst_span must be positive")
    span = min(burst_span, window)
    start = rng.uniform(0.0, max(window - span, 1e-9))
    offsets = rng.uniform(0.0, span, size=count)
    times = start + offsets
    # Distinct, strictly increasing times: perturb any collisions.
    times = np.sort(times)
    for i in range(1, len(times)):
        if times[i] <= times[i - 1]:
            times[i] = np.nextafter(times[i - 1], np.inf)
    return [float(t) for t in times]


def mixed_change_times(
    rng: np.random.Generator,
    count: int,
    window: float,
    burst_fraction: float = 0.8,
    burst_span: float = 3 * DAY,
) -> list[float]:
    """Changes split between one burst and isolated edits.

    ``burst_fraction`` of the changes form a burst; the rest are isolated.
    Files with many changes in real traces usually show both behaviours.
    """
    if not 0.0 <= burst_fraction <= 1.0:
        raise ValueError(f"burst_fraction outside [0, 1]: {burst_fraction}")
    in_burst = int(round(count * burst_fraction))
    isolated = count - in_burst
    times = burst_change_times(rng, in_burst, window, burst_span)
    times.extend(stable_change_times(rng, isolated, window))
    times.sort()
    # Enforce strict monotonicity across the merge as well.
    for i in range(1, len(times)):
        if times[i] <= times[i - 1]:
            times[i] = float(np.nextafter(times[i - 1], np.inf))
    return times
