"""Common workload containers.

A workload is everything one simulation run needs: the object population
with modification schedules (the origin server's contents) and the
time-ordered client request stream.  Generators in this package build
:class:`Workload` instances; the experiments feed them straight into
:func:`repro.core.simulate`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.objects import ObjectHistory
from repro.core.server import OriginServer


@dataclass
class Workload:
    """One generated workload.

    Attributes:
        histories: the object population with modification schedules.
        requests: time-ordered ``(time, object_id)`` pairs.
        duration: length of the simulated period in seconds; requests and
            in-window modifications all fall in ``[0, duration]``.
        clients: optional per-request client hostnames, aligned with
            ``requests`` (used by trace synthesis and the % - remote
            statistic of Table 1).
        name: label for reports.
    """

    histories: list[ObjectHistory]
    requests: list[tuple[float, str]]
    duration: float
    clients: Optional[list[str]] = None
    name: str = "workload"
    _server: Optional[OriginServer] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"duration must be non-negative: {self.duration}")
        if self.clients is not None and len(self.clients) != len(self.requests):
            raise ValueError(
                f"clients ({len(self.clients)}) must align with requests "
                f"({len(self.requests)})"
            )
        for earlier, later in zip(self.requests, self.requests[1:]):
            if later[0] < earlier[0]:
                raise ValueError("requests must be sorted by time")

    def server(self) -> OriginServer:
        """Build (once) and return the origin server for this workload."""
        if self._server is None:
            self._server = OriginServer(self.histories)
        return self._server

    @property
    def total_changes(self) -> int:
        """Modifications scheduled inside the simulated window."""
        return sum(
            h.schedule.changes_in(0.0, self.duration) for h in self.histories
        )

    @property
    def file_count(self) -> int:
        """Number of objects in the population."""
        return len(self.histories)

    def request_counts(self) -> dict[str, int]:
        """Requests per object id (popularity profile of the stream)."""
        counts: dict[str, int] = {}
        for _, oid in self.requests:
            counts[oid] = counts.get(oid, 0) + 1
        return counts


def sorted_request_times(rng, count: int, duration: float) -> Sequence[float]:
    """Draw ``count`` request timestamps uniformly over ``(0, duration)``.

    Uniform order statistics are equivalent to a conditioned Poisson
    process, which is how both Worrell's simulator and our trace
    synthesizer spread requests over the measurement window.
    """
    import numpy as np

    times = rng.uniform(0.0, duration, size=count)
    times.sort()
    return np.asarray(times, dtype=float)


def diurnal_request_times(
    rng,
    count: int,
    duration: float,
    peak_hour: float = 14.0,
    amplitude: float = 0.8,
) -> Sequence[float]:
    """Request timestamps with a daily intensity cycle.

    Real proxy traffic is strongly diurnal (the Microsoft numbers are
    quoted per *weekday*).  Arrival intensity is modulated as
    ``1 + amplitude * cos(2*pi*(t - peak)/DAY)`` and sampled by thinning
    a uniform proposal, so the marginal count is exact and the draw is
    reproducible.

    Args:
        rng: randomness source.
        count: number of timestamps.
        duration: window length in seconds.
        peak_hour: local hour of peak intensity (default mid-afternoon).
        amplitude: modulation depth in [0, 1); 0 degenerates to uniform.

    Raises:
        ValueError: for out-of-range amplitude or non-positive duration.
    """
    import numpy as np

    from repro.core.clock import DAY, HOUR

    if not 0.0 <= amplitude < 1.0:
        raise ValueError(f"amplitude must be in [0, 1): {amplitude}")
    if duration <= 0:
        raise ValueError(f"duration must be positive: {duration}")
    if count == 0:
        return np.empty(0, dtype=float)
    peak = peak_hour * HOUR
    accepted: list[float] = []
    # Thinning: accept proposals with probability intensity/max_intensity.
    while len(accepted) < count:
        need = count - len(accepted)
        proposals = rng.uniform(0.0, duration, size=max(need * 2, 16))
        intensity = 1.0 + amplitude * np.cos(
            2.0 * np.pi * (proposals - peak) / DAY
        )
        keep = rng.random(len(proposals)) < intensity / (1.0 + amplitude)
        accepted.extend(proposals[keep][:need].tolist())
    times = np.asarray(accepted, dtype=float)
    times.sort()
    return times
