"""Popularity↔mutability anti-correlation (Bestavros).

Section 4.2: "Bestavros found that on any given server only a few files
change rapidly.  Furthermore, he observed that globally popular files are
the least likely to change." and Table 1's own observation: "the most
popular server, the FAS server, is also the one with the fewest mutable
files."

:func:`choose_mutable_files` picks which files are mutable with a bias
toward *unpopular* ranks, parameterized so the correlation can be turned
off for the ablation benchmark that shows how much of the paper's
headline result depends on it.
"""

from __future__ import annotations

import numpy as np


def choose_mutable_files(
    rng: np.random.Generator,
    n_files: int,
    n_mutable: int,
    bias: float = 2.0,
) -> np.ndarray:
    """Select which popularity ranks are mutable.

    Args:
        rng: randomness source.
        n_files: population size; ranks are 0 (most popular) .. n-1.
        n_mutable: how many files to mark mutable.
        bias: strength of the anti-correlation.  Selection weights are
            ``(rank + 1) ** bias``: 0 selects uniformly (correlation off),
            larger values concentrate mutability in unpopular files.

    Returns:
        Sorted array of ``n_mutable`` distinct 0-based ranks.

    Raises:
        ValueError: when ``n_mutable`` exceeds ``n_files`` or inputs are
            negative.
    """
    if n_files <= 0:
        raise ValueError(f"n_files must be positive: {n_files}")
    if not 0 <= n_mutable <= n_files:
        raise ValueError(
            f"n_mutable must be in [0, {n_files}], got {n_mutable}"
        )
    if bias < 0:
        raise ValueError(f"bias must be non-negative: {bias}")
    if n_mutable == 0:
        return np.empty(0, dtype=int)
    ranks = np.arange(n_files, dtype=float)
    weights = (ranks + 1.0) ** bias
    weights /= weights.sum()
    chosen = rng.choice(n_files, size=n_mutable, replace=False, p=weights)
    return np.sort(chosen)


def choose_mutable_files_banded(
    rng: np.random.Generator,
    n_files: int,
    n_mutable: int,
    top_exclude: float = 0.10,
    bottom_exclude: float = 0.30,
    bias: float = 1.0,
) -> np.ndarray:
    """Select mutable files from the mid-popularity band.

    Bestavros' observation is one-sided: the *most popular* files change
    least.  Campus traces also show that the files whose changes the logs
    could observe at all receive regular traffic — a change on a file
    nobody requests is invisible.  This selector models both: the top
    ``top_exclude`` fraction of ranks is never mutable, the bottom
    ``bottom_exclude`` fraction is never mutable either, and within the
    remaining band selection is biased toward the unpopular end by
    ``bias`` (0 = uniform within the band).

    Falls back to widening the band when it is too small to hold
    ``n_mutable`` files.

    Returns:
        Sorted array of ``n_mutable`` distinct 0-based ranks.

    Raises:
        ValueError: on invalid fractions or counts.
    """
    if not 0.0 <= top_exclude < 1.0 or not 0.0 <= bottom_exclude < 1.0:
        raise ValueError("exclusion fractions must be in [0, 1)")
    if top_exclude + bottom_exclude >= 1.0:
        raise ValueError("exclusion fractions must leave a non-empty band")
    if not 0 <= n_mutable <= n_files:
        raise ValueError(
            f"n_mutable must be in [0, {n_files}], got {n_mutable}"
        )
    if n_mutable == 0:
        return np.empty(0, dtype=int)
    lo = int(n_files * top_exclude)
    hi = n_files - int(n_files * bottom_exclude)
    while hi - lo < n_mutable:
        # Band too narrow for the requested mutability: widen downward
        # first (keep the most popular files stable), then upward.
        if hi < n_files:
            hi = min(n_files, hi + max(1, n_files // 10))
        elif lo > 0:
            lo = max(0, lo - max(1, n_files // 10))
        else:
            break
    band = np.arange(lo, hi)
    weights = (band - lo + 1.0) ** bias
    weights /= weights.sum()
    chosen = rng.choice(band, size=n_mutable, replace=False, p=weights)
    return np.sort(chosen)


def expected_stale_exposure(
    popularity_weights: np.ndarray, change_rates: np.ndarray
) -> float:
    """The probability-weighted chance that a random request touches a
    changing file: sum_i p_i * c_i.

    This is the quantity the anti-correlation suppresses — it upper-bounds
    the stale-hit rate a weakly consistent protocol can suffer per unit
    time, and the ablation benchmark reports it alongside the measured
    stale rates.

    Raises:
        ValueError: on mismatched or empty inputs.
    """
    p = np.asarray(popularity_weights, dtype=float)
    c = np.asarray(change_rates, dtype=float)
    if p.shape != c.shape or p.size == 0:
        raise ValueError("weights and rates must be equal-length, non-empty")
    return float(np.dot(p, c))
