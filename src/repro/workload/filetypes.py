"""File types: access mix, sizes, ages, and life-spans (Table 2).

Table 2 combines two measurements:

* the **Microsoft proxy** access mix — 55% gif, 22% html, 10% jpg,
  9% cgi, 4% other, with average file sizes (gif 7791 B, html 4786 B,
  jpg 21608 B, cgi 5980 B);
* the **Boston University** per-type life-spans — average age 85/50/100
  days and median life-span 146/146/72 days for gif/html/jpg.

This module is the single registry for those numbers plus samplers that
draw types, sizes, and initial ages from them.  Sizes are lognormal
around the measured means (web file sizes are famously right-skewed);
ages are exponential around the measured average ages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.clock import DAY


@dataclass(frozen=True)
class FileTypeSpec:
    """Per-type parameters, one Table 2 row.

    Attributes:
        name: type label (``gif``, ``html``, ...).
        access_share: fraction of all requests (Microsoft column).
        mean_size: average body size in bytes (Microsoft column).
        avg_age_days: average age in days (BU column); None when the
            paper reports NA.
        median_lifespan_days: median life-span in days (BU column); None
            when NA.
        cacheable: False for dynamically generated content.
    """

    name: str
    access_share: float
    mean_size: int
    avg_age_days: Optional[float]
    median_lifespan_days: Optional[float]
    cacheable: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.access_share <= 1.0:
            raise ValueError(f"access_share outside [0,1]: {self.access_share}")
        if self.mean_size <= 0:
            raise ValueError(f"mean_size must be positive: {self.mean_size}")


#: The Table 2 rows.  cgi has no measured age/life-span (NA) and is
#: dynamic; "other" gets no Microsoft size either, so we give it the
#: html-like 6000 B used for unclassified text of the era.
TABLE2_TYPES: tuple[FileTypeSpec, ...] = (
    FileTypeSpec("gif", 0.55, 7791, 85.0, 146.0),
    FileTypeSpec("html", 0.22, 4786, 50.0, 146.0),
    FileTypeSpec("jpg", 0.10, 21608, 100.0, 72.0),
    FileTypeSpec("cgi", 0.09, 5980, None, None, cacheable=False),
    FileTypeSpec("other", 0.04, 6000, None, None),
)

#: Fallback age for types the BU data does not cover.
DEFAULT_AGE_DAYS: float = 60.0


def lognormal_with_mean(
    rng: np.random.Generator, mean: float, sigma: float
) -> float:
    """One lognormal draw whose distribution has the given mean.

    ``mean = exp(mu + sigma^2/2)`` ⇒ ``mu = ln(mean) - sigma^2/2``.

    Raises:
        ValueError: for non-positive ``mean`` or negative ``sigma``.
    """
    if mean <= 0:
        raise ValueError(f"mean must be positive: {mean}")
    if sigma < 0:
        raise ValueError(f"sigma must be non-negative: {sigma}")
    if sigma == 0:
        return mean
    mu = np.log(mean) - 0.5 * sigma**2
    return float(rng.lognormal(mean=mu, sigma=sigma))


class FileTypeModel:
    """Sampler over a set of :class:`FileTypeSpec` rows.

    Args:
        specs: the type registry (defaults to Table 2).
        size_sigma: lognormal shape parameter for sizes; 0 makes every
            file exactly the type's mean size.
        include_dynamic: when False, cgi (non-cacheable) content is
            excluded and the remaining shares renormalized — the
            configuration the consistency simulations use, since dynamic
            pages cannot be cached at all.
    """

    def __init__(
        self,
        specs: Sequence[FileTypeSpec] = TABLE2_TYPES,
        size_sigma: float = 0.8,
        include_dynamic: bool = True,
    ) -> None:
        if size_sigma < 0:
            raise ValueError(f"size_sigma must be non-negative: {size_sigma}")
        chosen = [
            s for s in specs if include_dynamic or s.cacheable
        ]
        if not chosen:
            raise ValueError("no file types left after filtering")
        total = sum(s.access_share for s in chosen)
        if total <= 0:
            raise ValueError("access shares must sum to a positive value")
        self.specs = tuple(chosen)
        self._shares = np.array([s.access_share / total for s in chosen])
        self.size_sigma = size_sigma
        self._by_name = {s.name: s for s in chosen}

    def spec(self, name: str) -> FileTypeSpec:
        """Look up a type by name.

        Raises:
            KeyError: for unknown type names.
        """
        return self._by_name[name]

    def sample_types(self, rng: np.random.Generator, count: int) -> list[str]:
        """Draw ``count`` type names according to the access mix."""
        idx = rng.choice(len(self.specs), size=count, p=self._shares)
        return [self.specs[i].name for i in idx]

    def sample_size(self, rng: np.random.Generator, type_name: str) -> int:
        """Draw one body size for ``type_name``.

        Lognormal with the type's mean preserved:
        ``mean = exp(mu + sigma^2/2)`` ⇒ ``mu = ln(mean) - sigma^2/2``.
        Sizes are clamped to at least 64 bytes.
        """
        spec = self.spec(type_name)
        if self.size_sigma == 0:
            return spec.mean_size
        mu = np.log(spec.mean_size) - 0.5 * self.size_sigma**2
        size = rng.lognormal(mean=mu, sigma=self.size_sigma)
        return max(64, int(round(size)))

    def sample_initial_age(
        self, rng: np.random.Generator, type_name: str, sigma: float = 0.6
    ) -> float:
        """Draw a pre-trace age (seconds) for a file of ``type_name``.

        Lognormal with the type's measured average age (Table 2 BU
        column) as the mean.  Ages are clamped to at least one day — the
        paper's conservatism runs the other way (it *overestimates*
        change rates), so the clamp only prevents degenerate zero-age
        preloads.  A lognormal rather than an exponential keeps the mass
        away from zero: a population whose "average age is 85 days" is
        dominated by genuinely old files, not by a spike of day-old ones.
        """
        spec = self.spec(type_name)
        mean_days = spec.avg_age_days or DEFAULT_AGE_DAYS
        age = lognormal_with_mean(rng, mean_days, sigma) * DAY
        return max(age, 1.0 * DAY)

    def mean_body_size(self) -> float:
        """The access-share-weighted mean body size."""
        return float(
            sum(share * spec.mean_size
                for share, spec in zip(self._shares, self.specs))
        )
