"""Workload generation: every synthetic input the reproduction needs.

* :class:`WorrellWorkload` — the flat-lifetime, uniform-access workload
  of the base/optimized simulators (Figures 2-5).
* :class:`CampusWorkload` / :func:`build_campus_workloads` — synthetic
  DAS/FAS/HCS traces matching Table 1 (Figures 6-8).
* :class:`BostonPopulation` — the BU modification-log population behind
  Table 2's life-spans.
* :class:`FileTypeModel` — the Table 2 type mix/size/age registry.
* Building blocks: :class:`ZipfSampler`, bimodal change-time generators,
  and the Bestavros popularity↔mutability selector.
"""

from repro.workload.base import (
    Workload,
    diurnal_request_times,
    sorted_request_times,
)
from repro.workload.bestavros import choose_mutable_files, expected_stale_exposure
from repro.workload.bimodal import (
    burst_change_times,
    mixed_change_times,
    stable_change_times,
)
from repro.workload.boston import BU_WINDOW, BostonPopulation
from repro.workload.campus import (
    CAMPUS_SERVERS,
    DAS,
    FAS,
    HCS,
    VERY_MUTABLE_CHANGES,
    CampusServerSpec,
    CampusWorkload,
    build_campus_workloads,
)
from repro.workload.filetypes import (
    DEFAULT_AGE_DAYS,
    TABLE2_TYPES,
    FileTypeModel,
    FileTypeSpec,
)
from repro.workload.microsoft import MicrosoftProxyWorkload
from repro.workload.worrell import WorrellWorkload
from repro.workload.zipf import ZipfSampler, zipf_weights

__all__ = [
    "BU_WINDOW",
    "CAMPUS_SERVERS",
    "DAS",
    "DEFAULT_AGE_DAYS",
    "FAS",
    "HCS",
    "TABLE2_TYPES",
    "VERY_MUTABLE_CHANGES",
    "BostonPopulation",
    "CampusServerSpec",
    "CampusWorkload",
    "FileTypeModel",
    "FileTypeSpec",
    "MicrosoftProxyWorkload",
    "Workload",
    "WorrellWorkload",
    "ZipfSampler",
    "build_campus_workloads",
    "diurnal_request_times",
    "burst_change_times",
    "choose_mutable_files",
    "expected_stale_exposure",
    "mixed_change_times",
    "sorted_request_times",
    "stable_change_times",
    "zipf_weights",
]
