"""Worrell's synthetic workload — the base/optimized simulator input.

Worrell "modeled the file lifetime distribution as a flat distribution
between the minimum and maximum observed lifetimes" and "used a uniform
distribution to generate file requests" (Sections 2.0/3.0).  Each file
draws one lifetime L from U(min, max) and is modified every L seconds
(phase randomized); requests pick files uniformly at random at uniform
times.

Default parameters are calibrated to the run the paper describes:
"one run of the base simulator included accesses to 2085 files over a 56
day simulated run.  Those 2085 files changed 19,898 times yielding a 17%
average probability that on any given day a particular file changed."
With L ~ U(1 day, 18 days), the expected number of changes is
``files * duration * E[1/L] = 2085 * 56 * ln(18)/17 ≈ 19.9k`` — the
paper's figure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.clock import DAY
from repro.core.objects import ModificationSchedule, ObjectHistory, WebObject
from repro.workload.base import Workload, sorted_request_times


@dataclass
class WorrellWorkload:
    """Builder for the flat-lifetime, uniform-access workload.

    Attributes:
        files: population size (paper run: 2085).
        requests: number of client requests across the window.
        duration: simulated period in seconds (paper run: 56 days).
        min_lifetime / max_lifetime: bounds of the flat lifetime
            distribution; the defaults reproduce the paper's ≈19.9k
            changes.
        mean_size: mean body size in bytes ("each file averages several
            thousand bytes").
        size_sigma: lognormal shape for sizes (0 = constant size).
        seed: RNG seed; every build is deterministic given the seed.
    """

    files: int = 2085
    requests: int = 100_000
    duration: float = 56 * DAY
    min_lifetime: float = 1 * DAY
    max_lifetime: float = 18 * DAY
    mean_size: int = 10_000
    size_sigma: float = 0.8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.files <= 0:
            raise ValueError(f"files must be positive: {self.files}")
        if self.requests < 0:
            raise ValueError(f"requests must be non-negative: {self.requests}")
        if self.duration <= 0:
            raise ValueError(f"duration must be positive: {self.duration}")
        if not 0 < self.min_lifetime <= self.max_lifetime:
            raise ValueError(
                "need 0 < min_lifetime <= max_lifetime, got "
                f"[{self.min_lifetime}, {self.max_lifetime}]"
            )
        if self.mean_size <= 0:
            raise ValueError(f"mean_size must be positive: {self.mean_size}")

    def expected_changes(self) -> float:
        """Analytic expectation of in-window modifications.

        Files modified every L with L ~ U(a, b) produce duration/L changes
        each; E[1/L] = ln(b/a)/(b-a).
        """
        a, b = self.min_lifetime, self.max_lifetime
        if a == b:
            mean_rate = 1.0 / a
        else:
            mean_rate = float(np.log(b / a) / (b - a))
        return self.files * self.duration * mean_rate

    def build(self) -> Workload:
        """Generate the workload deterministically from the seed."""
        rng = np.random.default_rng(self.seed)
        histories: list[ObjectHistory] = []
        if self.size_sigma > 0:
            mu = np.log(self.mean_size) - 0.5 * self.size_sigma**2
            sizes = rng.lognormal(mean=mu, sigma=self.size_sigma,
                                  size=self.files)
            sizes = np.maximum(64, np.round(sizes)).astype(int)
        else:
            sizes = np.full(self.files, self.mean_size, dtype=int)
        lifetimes = rng.uniform(self.min_lifetime, self.max_lifetime,
                                size=self.files)
        phases = rng.uniform(0.0, lifetimes)
        for i in range(self.files):
            lifetime = float(lifetimes[i])
            phase = float(phases[i])
            times = np.arange(phase, self.duration, lifetime)
            created = phase - lifetime
            obj = WebObject(
                object_id=f"/worrell/f{i:05d}",
                size=int(sizes[i]),
                file_type="html",
                created=created,
            )
            histories.append(
                ObjectHistory(obj, ModificationSchedule(created, times))
            )
        times = sorted_request_times(rng, self.requests, self.duration)
        picks = rng.integers(0, self.files, size=self.requests)
        request_list = [
            (float(t), histories[int(i)].object_id)
            for t, i in zip(times, picks)
        ]
        return Workload(
            histories=histories,
            requests=request_list,
            duration=self.duration,
            name=f"worrell(files={self.files}, requests={self.requests})",
        )
