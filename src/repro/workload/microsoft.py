"""The Microsoft proxy workload — Table 2's access mix as a drivable load.

"The Microsoft proxy cache sits between all Microsoft employees and
anything outside of Microsoft. ... On an average week day, the Microsoft
proxy cache server receives approximately 150,000 requests for web
objects.  Of these, 65% are for image files (gif and jpg)." and "10% of
the requests were for dynamically generated pages."  (Sections 4.2/5.0)

Unlike the campus workloads (one origin server each), this is a *proxy*
workload: requests fan out across many origin sites, the type mix and
sizes follow Table 2, a configurable fraction of requests is dynamic,
and — because the window is a single weekday against objects whose
life-spans are measured in months — almost nothing changes in-window.
That regime is exactly where weak consistency shines, and it is the
substrate for the capacity-planning example (bounded caches, replacement
policies).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.clock import DAY
from repro.core.objects import ModificationSchedule, ObjectHistory, WebObject
from repro.workload.base import (
    Workload,
    diurnal_request_times,
    sorted_request_times,
)
from repro.workload.filetypes import FileTypeModel
from repro.workload.zipf import ZipfSampler

_LN2 = float(np.log(2.0))
_EXTENSIONS = {"gif": "gif", "html": "html", "jpg": "jpg",
               "cgi": "cgi", "other": "dat"}


@dataclass
class MicrosoftProxyWorkload:
    """Builder for the corporate-proxy weekday workload.

    Attributes:
        sites: number of distinct origin sites behind the proxy.
        files_per_site: static objects per site.
        requests: request volume over the window (paper: ~150,000 per
            weekday).
        duration: window length (one day by default).
        dynamic_fraction: share of requests answered by dynamic pages
            (paper: 10%).
        zipf_s: popularity skew across the whole object population.
        diurnal_amplitude: daily traffic-cycle depth in [0, 1); 0 (the
            default) spreads requests uniformly, matching the other
            generators; ~0.8 models a pronounced office-hours peak.
        seed: RNG seed.
        type_model: Table 2 registry override.
    """

    sites: int = 40
    files_per_site: int = 120
    requests: int = 150_000
    duration: float = 1 * DAY
    dynamic_fraction: float = 0.10
    zipf_s: float = 0.9
    diurnal_amplitude: float = 0.0
    seed: int = 0
    type_model: Optional[FileTypeModel] = None
    _model: FileTypeModel = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.sites <= 0 or self.files_per_site <= 0:
            raise ValueError("sites and files_per_site must be positive")
        if self.requests < 0:
            raise ValueError(f"requests must be non-negative: {self.requests}")
        if self.duration <= 0:
            raise ValueError(f"duration must be positive: {self.duration}")
        if not 0.0 <= self.dynamic_fraction < 1.0:
            raise ValueError(
                f"dynamic_fraction must be in [0, 1): {self.dynamic_fraction}"
            )
        self._model = self.type_model or FileTypeModel(include_dynamic=False)

    @property
    def total_static_files(self) -> int:
        """Static object population size across all sites."""
        return self.sites * self.files_per_site

    def build(self) -> Workload:
        """Generate the workload deterministically from the seed."""
        rng = np.random.default_rng(self.seed)
        model = self._model
        histories: list[ObjectHistory] = []
        for site in range(self.sites):
            host = f"site{site:02d}.example.com"
            for i in range(self.files_per_site):
                tname = model.sample_types(rng, 1)[0]
                spec = model.spec(tname)
                age = model.sample_initial_age(rng, tname)
                created = -float(age)
                # Month-scale life-spans: in a one-day window, changes
                # are rare Poisson events.
                times: list[float] = []
                if spec.median_lifespan_days is not None:
                    mean_interval = spec.median_lifespan_days * DAY / _LN2
                    t = float(rng.exponential(mean_interval))
                    while t < self.duration:
                        times.append(t)
                        t += float(rng.exponential(mean_interval))
                histories.append(
                    ObjectHistory(
                        WebObject(
                            object_id=(
                                f"/{host}/f{i:04d}.{_EXTENSIONS[tname]}"
                            ),
                            size=model.sample_size(rng, tname),
                            file_type=tname,
                            created=created,
                        ),
                        ModificationSchedule(created, times),
                    )
                )
        static_count = len(histories)

        dynamic_ids: list[str] = []
        if self.dynamic_fraction > 0:
            n_dynamic = max(1, self.total_static_files // 10)
            for j in range(n_dynamic):
                host = f"site{j % self.sites:02d}.example.com"
                size = max(64, int(round(rng.lognormal(
                    mean=np.log(5980) - 0.5 * 0.8**2, sigma=0.8))))
                obj = WebObject(
                    object_id=f"/{host}/cgi-bin/app{j:04d}.cgi",
                    size=size, file_type="cgi", created=-DAY,
                    cacheable=False,
                )
                histories.append(ObjectHistory(obj))
                dynamic_ids.append(obj.object_id)

        if self.diurnal_amplitude > 0:
            times = diurnal_request_times(
                rng, self.requests, self.duration,
                amplitude=self.diurnal_amplitude,
            )
        else:
            times = sorted_request_times(rng, self.requests, self.duration)
        # The Microsoft numbers are a property of the *request* stream
        # (55% of accesses are gif, ...), so draw each request's type
        # from the access mix first, then a Zipf-popular object within
        # that type.  A single global Zipf would let the handful of head
        # objects' types swing the measured mix by several points.
        by_type: dict[str, list[str]] = {}
        for h in histories[:static_count]:
            by_type.setdefault(h.obj.file_type, []).append(h.object_id)
        type_names = model.sample_types(rng, self.requests)
        samplers = {
            tname: ZipfSampler(len(ids), self.zipf_s)
            for tname, ids in by_type.items()
        }
        # Shuffle within each type so popularity is independent of site.
        for ids in by_type.values():
            rng.shuffle(ids)
        is_dynamic = (
            rng.random(self.requests) < self.dynamic_fraction
            if dynamic_ids else np.zeros(self.requests, dtype=bool)
        )
        dyn_sampler = (
            ZipfSampler(len(dynamic_ids), self.zipf_s) if dynamic_ids else None
        )
        dyn_picks = (
            dyn_sampler.sample(rng, self.requests) if dyn_sampler else None
        )
        request_list = []
        for k, t in enumerate(times):
            if is_dynamic[k]:
                request_list.append(
                    (float(t), dynamic_ids[int(dyn_picks[k])])
                )
                continue
            tname = type_names[k]
            if tname not in by_type:
                tname = max(by_type, key=lambda name: len(by_type[name]))
            ids = by_type[tname]
            rank = int(samplers[tname].sample(rng, 1)[0])
            request_list.append((float(t), ids[rank]))
        clients = [
            f"ws{int(c):04d}.corp.microsoft.com"
            for c in rng.integers(0, 2000, size=self.requests)
        ]
        return Workload(
            histories=histories,
            requests=request_list,
            duration=self.duration,
            clients=clients,
            name=(
                f"microsoft-proxy({self.sites} sites, "
                f"{self.requests} requests)"
            ),
        )
