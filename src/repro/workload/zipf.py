"""Zipf-distributed request popularity.

Worrell "used a uniform distribution to generate file requests", which
the paper identifies as unrealistic; real Web reference streams are
heavily skewed (Bestavros, and many later studies).  The campus workload
generator therefore draws objects from a Zipf-like distribution:
P(rank k) ∝ 1 / k**s.
"""

from __future__ import annotations

import numpy as np


def zipf_weights(n: int, s: float = 0.9) -> np.ndarray:
    """Normalized Zipf probabilities for ranks 1..n.

    Args:
        n: number of items.
        s: the Zipf exponent; 0 degenerates to uniform, ~1 is classic web
            popularity skew.

    Raises:
        ValueError: for non-positive ``n`` or negative ``s``.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if s < 0:
        raise ValueError(f"s must be non-negative, got {s}")
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks ** (-s)
    return weights / weights.sum()


class ZipfSampler:
    """Draw item ranks (0-based) from a Zipf(n, s) distribution.

    Sampling uses inverse-CDF lookup over the precomputed cumulative
    weights, so drawing a batch of m requests costs O(m log n).
    """

    def __init__(self, n: int, s: float = 0.9) -> None:
        self.n = n
        self.s = s
        self._cdf = np.cumsum(zipf_weights(n, s))
        # Guard against floating-point drift at the top end.
        self._cdf[-1] = 1.0

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Draw ``count`` 0-based ranks (0 = most popular)."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        u = rng.random(count)
        return np.searchsorted(self._cdf, u, side="right")

    def probability(self, rank: int) -> float:
        """P(draw == rank) for a 0-based rank."""
        if not 0 <= rank < self.n:
            raise IndexError(f"rank {rank} outside [0, {self.n})")
        prev = self._cdf[rank - 1] if rank > 0 else 0.0
        return float(self._cdf[rank] - prev)
