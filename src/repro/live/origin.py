"""The live HTTP/1.0 origin server.

A thin asyncio front end over the *unmodified*
:class:`repro.core.server.OriginServer` population model.  Request
shapes, exactly the operations the simulator's origin answers:

* plain ``GET /path`` with a ``Date`` header — a full retrieval:
  ``200`` with ``Content-Length``, ``Content-Type``, ``Last-Modified``,
  an ``Expires`` header when the object declares a lifetime, and
  ``Pragma: no-cache`` for dynamic (non-cacheable) objects;
* conditional ``GET`` carrying ``If-Modified-Since`` — the paper's
  "send this file if it has changed since a specific date": ``304``
  (with a *re-stamped* ``Expires``, matching
  :class:`repro.core.server.NotModified`) or a full ``200``;
* control endpoints under ``/.well-known/repro/`` — the cacheable
  population listing, the invalidation feed window (the live transport
  of :meth:`~repro.core.server.OriginServer.feed_between`, optionally
  restricted to one object via ``X-Repro-Object``), the full
  modification feed (``feed``, for compiling fault plans), and a JSON
  counter dump.  Control exchanges are never counted.

The origin keeps its own exchange counters (``gets``, ``ims_queries``)
so the driver can assemble Figure-8-style server-load numbers; warming
fetches (tagged ``X-Repro-Warmup``) are served but not counted,
mirroring the simulator's uncounted preload.

Concurrency and chaos hardening: connections are served keep-alive
(loop until the peer closes or omits ``Connection: keep-alive``), each
request is processed under one internal state lock (the population
model is not re-entrant and the counters must not tear), and a request
carrying :data:`~repro.live.wire.SEQ_HEADER` is counted at most once —
under an at-least-once transport a *retried* exchange must not inflate
the server-load counters the differential oracle pins.  Responses
themselves are pure functions of the request, so replaying the work is
free; only the counting needs the dedup.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional

from repro.core.server import (
    FetchResult,
    NotModified,
    OriginServer,
    UnknownObjectError,
)
from repro.http.datefmt import HTTPDateError, format_http_date
from repro.http.headers import CONTENT_LENGTH, CONTENT_TYPE, EXPIRES
from repro.http.messages import Request, Response, make_ok
from repro.live.wire import (
    CONTROL_PREFIX,
    DATE,
    OBJECT_HEADER,
    PRAGMA,
    SEQ_HEADER,
    TRACE_HEADER,
    WARMUP_HEADER,
    LiveConnectionClosed,
    LiveWireError,
    cancel_handler_tasks,
    pin_handler_task,
    read_request,
    wants_keepalive,
    write_message,
)
from repro.obs import clock as obs_clock
from repro.obs import registry as obs_metrics
from repro.obs import trace as obs_trace


def _error(status: int, message: str) -> tuple[Response, str]:
    body = message + "\n"
    response = Response(status, body_size=len(body))
    response.headers.set(CONTENT_LENGTH, str(len(body)))
    response.headers.set(CONTENT_TYPE, "text")
    return response, body


def _text_ok(body: str) -> tuple[Response, str]:
    response = Response(200, body_size=len(body))
    response.headers.set(CONTENT_LENGTH, str(len(body)))
    response.headers.set(CONTENT_TYPE, "text")
    return response, body


class LiveOrigin:
    """An asyncio HTTP/1.0 origin serving a modelled population.

    Args:
        server: the population model (objects + modification
            schedules) — the same instance a simulation run would use.
        trace: a per-role :class:`~repro.obs.trace.TraceSink` recording
            the origin's side of the live causal trace — a recv mark
            and a service-time span per exchange that carries an
            ``X-Repro-Trace`` id (``docs/OBSERVABILITY.md``).
    """

    def __init__(
        self,
        server: OriginServer,
        *,
        trace: Optional[obs_trace.TraceSink] = None,
    ) -> None:
        self.server = server
        self._trace = trace
        #: Counted (non-warmup) full-retrieval exchanges served.
        self.gets = 0
        #: Counted (non-warmup) If-Modified-Since exchanges served.
        self.ims_queries = 0
        #: Transport-level connection failures observed while serving.
        self.connection_errors = 0
        self._seen: set[str] = set()
        self._state_lock = asyncio.Lock()
        self._handlers: set[asyncio.Task[None]] = set()
        self._listener: Optional[asyncio.AbstractServer] = None
        self._host = ""
        self._port = 0

    # -- lifecycle -----------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind and start serving; ``port=0`` picks an ephemeral port."""
        self._listener = await asyncio.start_server(
            self._handle, host=host, port=port
        )
        sockname = self._listener.sockets[0].getsockname()
        self._host, self._port = sockname[0], int(sockname[1])

    async def close(self) -> None:
        """Stop serving and release the socket."""
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()
            self._listener = None
        await cancel_handler_tasks(self._handlers)

    @property
    def host(self) -> str:
        """Bound address (after :meth:`start`)."""
        return self._host

    @property
    def port(self) -> int:
        """Bound port (after :meth:`start`)."""
        return self._port

    # -- request handling ----------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        pin_handler_task(self._handlers)
        try:
            while True:
                try:
                    request, _ = await read_request(reader)
                except LiveConnectionClosed:
                    break
                except LiveWireError as exc:
                    response, body = _error(400, str(exc))
                    await write_message(writer, response.serialize(body))
                    break
                keep = wants_keepalive(request)
                tid = request.headers.get(TRACE_HEADER)
                if self._trace is not None and tid is not None:
                    self._trace.mark(
                        "live.trace.recv", tid, obs_clock.monotonic()
                    )
                async with self._state_lock:
                    served_started = obs_clock.monotonic()
                    response, body = self._respond(request)
                    if self._trace is not None and tid is not None:
                        served_clk = obs_clock.monotonic()
                        self._trace.span(
                            "live.trace.origin",
                            served_clk - served_started,
                            {
                                "trace": tid,
                                "clk": served_clk,
                                "object": request.path,
                            },
                        )
                await write_message(writer, response.serialize(body))
                if not keep:
                    break
        except asyncio.CancelledError:
            # Teardown must propagate: suppressing it would leave the
            # listener's close() waiting on this handler forever.
            raise
        except ConnectionError:
            await self._note_connection_error()
        finally:
            writer.close()

    async def _note_connection_error(self) -> None:
        """Count a transport failure instead of silently swallowing it."""
        async with self._state_lock:
            self.connection_errors += 1
            obs_metrics.emit("live.connection_errors")

    def _respond(self, request: Request) -> tuple[Response, str]:
        if request.method != "GET":
            return _error(400, f"unsupported method {request.method!r}")
        if request.path.startswith(CONTROL_PREFIX):
            return self._control(request)
        return self._object(request)

    def _fresh_seq(self, request: Request) -> bool:
        """True when this exchange should be counted.

        A request without :data:`SEQ_HEADER` is always fresh (the
        historical serial driver sends none).  With one, only the first
        arrival counts — a retry after a chaos fault or proxy restart
        repeats the work but not the accounting.
        """
        seq = request.headers.get(SEQ_HEADER)
        if seq is None:
            return True
        if seq in self._seen:
            return False
        self._seen.add(seq)
        return True

    # -- control endpoints ---------------------------------------------------

    def _control(self, request: Request) -> tuple[Response, str]:
        endpoint = request.path[len(CONTROL_PREFIX):]
        if endpoint == "population":
            lines = [
                oid
                for oid, history in self.server.histories().items()
                if history.obj.cacheable
            ]
            return _text_ok("".join(line + "\n" for line in lines))
        if endpoint == "invalidations":
            return self._invalidations(request)
        if endpoint == "feed":
            # The full modification feed, for compiling a FaultPlan on
            # the proxy side exactly as Simulation.__init__ does.
            lines = [
                f"{format_http_date(mod_time)}\t{oid}\n"
                for mod_time, oid in self.server.invalidation_feed()
            ]
            return _text_ok("".join(lines))
        if endpoint == "stats":
            return _text_ok(
                json.dumps(
                    {"gets": self.gets, "ims_queries": self.ims_queries},
                    sort_keys=True,
                )
                + "\n"
            )
        return _error(404, f"unknown control endpoint {endpoint!r}")

    def _invalidations(self, request: Request) -> tuple[Response, str]:
        """The ``(since, until]`` modification window, one event per line.

        ``If-Modified-Since`` carries the window's exclusive lower edge,
        ``Date`` the inclusive upper edge — the exact contract of
        :meth:`repro.core.server.OriginServer.feed_between`, so a proxy
        polling successive windows sees every event exactly once.  An
        ``X-Repro-Object`` header restricts the window to one object —
        the concurrent proxy pulls per-object windows under per-object
        locks.
        """
        try:
            since = request.headers.if_modified_since
            until = request.headers.get_date(DATE)
        except HTTPDateError as exc:
            return _error(400, str(exc))
        if since is None or until is None:
            return _error(
                400,
                "invalidation window needs If-Modified-Since (since, "
                "exclusive) and Date (until, inclusive) headers",
            )
        only = request.headers.get(OBJECT_HEADER)
        lines = [
            f"{format_http_date(mod_time)}\t{oid}\n"
            for mod_time, oid in self.server.feed_between(since, until)
            if only is None or oid == only
        ]
        return _text_ok("".join(lines))

    # -- object retrievals ---------------------------------------------------

    def _object(self, request: Request) -> tuple[Response, str]:
        try:
            t = request.headers.get_date(DATE)
        except HTTPDateError as exc:
            return _error(400, str(exc))
        if t is None:
            return _error(400, "object requests need a Date header")
        try:
            history = self.server.history(request.path)
        except UnknownObjectError:
            return _error(404, f"no such object: {request.path!r}")
        warmup = WARMUP_HEADER in request.headers
        if request.is_conditional:
            try:
                since = request.headers.if_modified_since
            except HTTPDateError as exc:
                return _error(400, str(exc))
            assert since is not None  # is_conditional implies presence
            if not warmup and self._fresh_seq(request):
                self.ims_queries += 1
            result = self.server.if_modified_since(request.path, t, since)
            if isinstance(result, NotModified):
                response = Response(304)
                response.headers.set_date(DATE, t)
                if result.expires is not None:
                    response.headers.set_date(EXPIRES, result.expires)
                return response, ""
        else:
            if not warmup and self._fresh_seq(request):
                self.gets += 1
            result = self.server.get(request.path, t)
        return self._full_response(request.path, t, result)

    def _full_response(
        self, object_id: str, t: float, result: FetchResult
    ) -> tuple[Response, str]:
        obj = self.server.object(object_id)
        response = make_ok(result.size, last_modified=result.last_modified)
        response.headers.set_date(DATE, t)
        response.headers.set(CONTENT_TYPE, obj.file_type)
        if result.expires is not None:
            response.headers.set_date(EXPIRES, result.expires)
        if not obj.cacheable:
            response.headers.set(PRAGMA, "no-cache")
        return response, "x" * result.size
