"""The live HTTP/1.0 origin server.

A thin asyncio front end over the *unmodified*
:class:`repro.core.server.OriginServer` population model.  Three
request shapes, exactly the operations the simulator's origin answers:

* plain ``GET /path`` with a ``Date`` header — a full retrieval:
  ``200`` with ``Content-Length``, ``Content-Type``, ``Last-Modified``,
  an ``Expires`` header when the object declares a lifetime, and
  ``Pragma: no-cache`` for dynamic (non-cacheable) objects;
* conditional ``GET`` carrying ``If-Modified-Since`` — the paper's
  "send this file if it has changed since a specific date": ``304``
  (with a *re-stamped* ``Expires``, matching
  :class:`repro.core.server.NotModified`) or a full ``200``;
* control endpoints under ``/.well-known/repro/`` — the cacheable
  population listing, the invalidation feed window (the live transport
  of :meth:`~repro.core.server.OriginServer.feed_between`), and a JSON
  counter dump.  Control exchanges are never counted.

The origin keeps its own exchange counters (``gets``,
``ims_queries``) so the driver can assemble Figure-8-style server-load
numbers; warming fetches (tagged ``X-Repro-Warmup``) are served but not
counted, mirroring the simulator's uncounted preload.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional

from repro.core.server import (
    FetchResult,
    NotModified,
    OriginServer,
    UnknownObjectError,
)
from repro.http.datefmt import HTTPDateError, format_http_date
from repro.http.headers import CONTENT_LENGTH, CONTENT_TYPE, EXPIRES
from repro.http.messages import Request, Response, make_ok
from repro.live.wire import (
    CONTROL_PREFIX,
    DATE,
    PRAGMA,
    WARMUP_HEADER,
    LiveWireError,
    read_request,
    write_message,
)


def _error(status: int, message: str) -> tuple[Response, str]:
    body = message + "\n"
    response = Response(status, body_size=len(body))
    response.headers.set(CONTENT_LENGTH, str(len(body)))
    response.headers.set(CONTENT_TYPE, "text")
    return response, body


def _text_ok(body: str) -> tuple[Response, str]:
    response = Response(200, body_size=len(body))
    response.headers.set(CONTENT_LENGTH, str(len(body)))
    response.headers.set(CONTENT_TYPE, "text")
    return response, body


class LiveOrigin:
    """An asyncio HTTP/1.0 origin serving a modelled population.

    Args:
        server: the population model (objects + modification
            schedules) — the same instance a simulation run would use.
    """

    def __init__(self, server: OriginServer) -> None:
        self.server = server
        #: Counted (non-warmup) full-retrieval exchanges served.
        self.gets = 0
        #: Counted (non-warmup) If-Modified-Since exchanges served.
        self.ims_queries = 0
        self._listener: Optional[asyncio.AbstractServer] = None
        self._host = ""
        self._port = 0

    # -- lifecycle -----------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind and start serving; ``port=0`` picks an ephemeral port."""
        self._listener = await asyncio.start_server(
            self._handle, host=host, port=port
        )
        sockname = self._listener.sockets[0].getsockname()
        self._host, self._port = sockname[0], int(sockname[1])

    async def close(self) -> None:
        """Stop serving and release the socket."""
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()
            self._listener = None

    @property
    def host(self) -> str:
        """Bound address (after :meth:`start`)."""
        return self._host

    @property
    def port(self) -> int:
        """Bound port (after :meth:`start`)."""
        return self._port

    # -- request handling ----------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request, _ = await read_request(reader)
            except LiveWireError as exc:
                response, body = _error(400, str(exc))
            else:
                response, body = self._respond(request)
            await write_message(writer, response.serialize(body))
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()

    def _respond(self, request: Request) -> tuple[Response, str]:
        if request.method != "GET":
            return _error(400, f"unsupported method {request.method!r}")
        if request.path.startswith(CONTROL_PREFIX):
            return self._control(request)
        return self._object(request)

    # -- control endpoints ---------------------------------------------------

    def _control(self, request: Request) -> tuple[Response, str]:
        endpoint = request.path[len(CONTROL_PREFIX):]
        if endpoint == "population":
            lines = [
                oid
                for oid, history in self.server.histories().items()
                if history.obj.cacheable
            ]
            return _text_ok("".join(line + "\n" for line in lines))
        if endpoint == "invalidations":
            return self._invalidations(request)
        if endpoint == "stats":
            return _text_ok(
                json.dumps(
                    {"gets": self.gets, "ims_queries": self.ims_queries},
                    sort_keys=True,
                )
                + "\n"
            )
        return _error(404, f"unknown control endpoint {endpoint!r}")

    def _invalidations(self, request: Request) -> tuple[Response, str]:
        """The ``(since, until]`` modification window, one event per line.

        ``If-Modified-Since`` carries the window's exclusive lower edge,
        ``Date`` the inclusive upper edge — the exact contract of
        :meth:`repro.core.server.OriginServer.feed_between`, so a proxy
        polling successive windows sees every event exactly once.
        """
        try:
            since = request.headers.if_modified_since
            until = request.headers.get_date(DATE)
        except HTTPDateError as exc:
            return _error(400, str(exc))
        if since is None or until is None:
            return _error(
                400,
                "invalidation window needs If-Modified-Since (since, "
                "exclusive) and Date (until, inclusive) headers",
            )
        lines = [
            f"{format_http_date(mod_time)}\t{oid}\n"
            for mod_time, oid in self.server.feed_between(since, until)
        ]
        return _text_ok("".join(lines))

    # -- object retrievals ---------------------------------------------------

    def _object(self, request: Request) -> tuple[Response, str]:
        try:
            t = request.headers.get_date(DATE)
        except HTTPDateError as exc:
            return _error(400, str(exc))
        if t is None:
            return _error(400, "object requests need a Date header")
        try:
            history = self.server.history(request.path)
        except UnknownObjectError:
            return _error(404, f"no such object: {request.path!r}")
        warmup = WARMUP_HEADER in request.headers
        if request.is_conditional:
            try:
                since = request.headers.if_modified_since
            except HTTPDateError as exc:
                return _error(400, str(exc))
            assert since is not None  # is_conditional implies presence
            if not warmup:
                self.ims_queries += 1
            result = self.server.if_modified_since(request.path, t, since)
            if isinstance(result, NotModified):
                response = Response(304)
                response.headers.set_date(DATE, t)
                if result.expires is not None:
                    response.headers.set_date(EXPIRES, result.expires)
                return response, ""
        else:
            if not warmup:
                self.gets += 1
            result = self.server.get(request.path, t)
        return self._full_response(request.path, t, result)

    def _full_response(
        self, object_id: str, t: float, result: FetchResult
    ) -> tuple[Response, str]:
        obj = self.server.object(object_id)
        response = make_ok(result.size, last_modified=result.last_modified)
        response.headers.set_date(DATE, t)
        response.headers.set(CONTENT_TYPE, obj.file_type)
        if result.expires is not None:
            response.headers.set_date(EXPIRES, result.expires)
        if not obj.cacheable:
            response.headers.set(PRAGMA, "no-cache")
        return response, "x" * result.size
