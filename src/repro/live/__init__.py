"""Live HTTP/1.0 origin + proxy mode: the simulator's objects on sockets.

The simulator (:mod:`repro.core`) exercises the paper's consistency
protocols against a *modelled* origin server.  This package runs the
very same objects — the :class:`~repro.core.server.OriginServer`
population model, the :class:`~repro.core.cache.Cache`, every
:class:`~repro.core.protocols.base.ConsistencyProtocol`, and the
:mod:`repro.http` message/date models — over real asyncio sockets:

* :class:`~repro.live.origin.LiveOrigin` — an HTTP/1.0 origin serving
  the modelled population (plain GET, If-Modified-Since, an
  invalidation feed control endpoint), keep-alive capable;
* :class:`~repro.live.proxy.LiveProxy` — a caching proxy whose
  freshness decisions are delegated to an unmodified protocol object
  and whose accounting mirrors :class:`repro.core.simulator.Simulation`
  step-for-step, with per-object locking, transactional commit, and an
  optional crash journal (:class:`~repro.live.journal.Journal`);
* :func:`~repro.live.driver.replay_live` /
  :func:`~repro.live.driver.replay_pooled` — load drivers replaying a
  synthetic trace over live connections, serially or through a
  keep-alive connection pool;
* :class:`~repro.live.chaos.ChaosRelay` — a deterministic socket-level
  fault injector (loss, reset, truncation, dribble, delay) that sits on
  either hop;
* :func:`~repro.live.differential.live_vs_sim` /
  :func:`~repro.live.differential.crash_vs_sim` — the oracle's fourth
  leg: after a live replay (concurrent, chaos-ridden, or SIGKILLed and
  journal-restored), the proxy's counters and bandwidth ledger must
  equal a simulated run of the same trace *exactly*.

Simulation time travels on the wire in RFC 1123 ``Date`` headers at
whole-second granularity, which is why every timestamp a live run
touches must be integral (:func:`~repro.live.wire.ensure_integral`) —
and why the pre-epoch flooring fix in :mod:`repro.http.datefmt`
matters: objects created before the trace window carry negative
Last-Modified stamps that must survive a header round trip.

See ``docs/LIVE.md`` for the full design and the equivalence argument.
"""

from repro.live.chaos import ChaosRelay, WireFaultPlan, parse_chaos
from repro.live.differential import (
    crash_vs_sim,
    diff_event_multisets,
    diff_live_vs_sim,
    live_vs_sim,
)
from repro.live.driver import (
    LiveReplayReport,
    check_wire_exact,
    replay_live,
    replay_pooled,
    run_crash_replay,
    run_replay,
)
from repro.live.journal import Journal
from repro.live.origin import LiveOrigin
from repro.live.proxy import LiveProxy
from repro.live.wire import (
    LiveConnection,
    LiveConnectionClosed,
    LiveReplayError,
    LiveTruncationError,
    LiveWireError,
    ensure_integral,
)

__all__ = [
    "ChaosRelay",
    "Journal",
    "LiveConnection",
    "LiveConnectionClosed",
    "LiveOrigin",
    "LiveProxy",
    "LiveReplayError",
    "LiveReplayReport",
    "LiveTruncationError",
    "LiveWireError",
    "WireFaultPlan",
    "check_wire_exact",
    "crash_vs_sim",
    "diff_event_multisets",
    "diff_live_vs_sim",
    "ensure_integral",
    "live_vs_sim",
    "parse_chaos",
    "replay_live",
    "replay_pooled",
    "run_crash_replay",
    "run_replay",
]
