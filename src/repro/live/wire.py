"""Socket framing for the live origin/proxy: HTTP/1.0, with optional
keep-alive connection reuse.

The live servers speak exactly what :mod:`repro.http.messages`
serializes: a request or status line, ``Name: value`` headers, a blank
line, and (for responses) a ``Content-Length``-delimited entity body.
HTTP/1.0 close-delimited bodies are deliberately not supported — every
live response carries an explicit ``Content-Length`` (or is a bodiless
304), so a reader always knows exactly how many bytes to consume and
the byte count on the wire equals ``Response.wire_size()``.

Connections carry one exchange by default (:func:`exchange`, the
historical behaviour, byte-identical to PR 7).  A client that sends
``Connection: keep-alive`` — :class:`LiveConnection` does — keeps the
socket open for further exchanges; the servers loop reading requests
until the peer closes or drops the header.  The framing distinguishes
three stream endings that HTTP/1.0 conflates: a clean close *between*
messages (:class:`LiveConnectionClosed` — how keep-alive loops end), a
close mid-head (:class:`LiveWireError`), and a body shorter than its
declared ``Content-Length`` (:class:`LiveTruncationError` — what the
chaos layer's truncation faults produce).

Simulation time travels in ``Date`` headers (RFC 1123, whole seconds).
:func:`ensure_integral` is the gate that keeps a live run wire-exact:
any fractional timestamp would be floored by the header round trip and
the live replay could no longer match the simulator bit-for-bit.
Extended-CLF traces satisfy the constraint by construction (CLF has
one-second granularity).
"""

from __future__ import annotations

import asyncio
from typing import Optional, Union

from repro.http.headers import CONTENT_LENGTH
from repro.http.messages import (
    HTTPParseError,
    Request,
    Response,
    parse_request,
    parse_response,
)

#: Header carrying the request's simulation time (RFC 1123 date).
DATE = "Date"
#: Proxy response header naming the serving path: HIT / REVALIDATED /
#: MISS (body transferred) — the live analogue of the simulator's
#: hit/validation_304/miss outcomes.
X_CACHE = "X-Cache"
#: HTTP/1.0 non-cacheability marker the origin attaches to dynamic
#: objects ("Pragma: no-cache"); the proxy never stores such responses.
PRAGMA = "Pragma"
#: Marks cache-warming fetches; the origin serves but does not count
#: them, mirroring the simulator's uncounted preload.
WARMUP_HEADER = "X-Repro-Warmup"
#: Path prefix for the out-of-band control endpoints (population,
#: invalidation feed, stats); control exchanges are never counted.
CONTROL_PREFIX = "/.well-known/repro/"
#: HTTP/1.0 connection-reuse opt-in; absent means one exchange and close.
CONNECTION = "Connection"
#: The value requesting connection reuse.
KEEP_ALIVE = "keep-alive"
#: Idempotency key for at-least-once transports: a retried request
#: carries the same sequence id, and the receiver replays its committed
#: response (proxy) or skips re-counting (origin) instead of mutating
#: state twice.  This is what keeps counters exact under socket chaos.
SEQ_HEADER = "X-Repro-Seq"
#: Restricts an invalidation-feed window to one object (the concurrent
#: proxy pulls per-object windows under per-object locks).
OBJECT_HEADER = "X-Repro-Object"
#: Causal trace id for cross-process tracing: the driver stamps one
#: deterministic id per request (``r<stream index>``), the proxy echoes
#: it onto its upstream fetches, and every hop records its spans and
#: marks under it (``repro.obs.timeline`` joins the streams).  Only
#: present when tracing is requested, so untraced replays keep their
#: historical wire bytes.
TRACE_HEADER = "X-Repro-Trace"

#: Hard cap on a message head (start line + headers); a peer sending
#: more is malformed, not large.
_MAX_HEAD_BYTES = 65536

_HEAD_TERMINATOR = b"\r\n\r\n"


class LiveWireError(ValueError):
    """A live peer sent something the HTTP/1.0 framing cannot carry."""


class LiveConnectionClosed(LiveWireError):
    """The peer closed the stream cleanly *between* messages.

    Not a framing violation: this is how a keep-alive loop learns the
    client is done.  Subclasses :class:`LiveWireError` so one-shot
    callers that treat any early close as an error keep working.
    """


class LiveTruncationError(LiveWireError):
    """A message body ended short of its declared ``Content-Length``.

    Distinct from a close mid-head or between messages: the head parsed
    fine and promised more bytes than arrived — the signature of a
    truncating transport fault, and the trigger for a client retry.
    """


class LiveReplayError(ValueError):
    """A live replay was configured with inputs that cannot be
    wire-exact (fractional timestamps, unordered requests, ...)."""


def ensure_integral(t: float, what: str) -> float:
    """Require ``t`` to be a whole simulation second; return it.

    Wire transport rounds times to whole seconds (RFC 1123 dates), so a
    fractional timestamp anywhere in a live run's inputs would make the
    live and simulated accounting diverge by construction.

    Raises:
        LiveReplayError: when ``t`` has a fractional part.
    """
    value = float(t)
    if not value.is_integer():
        raise LiveReplayError(
            f"{what} must be a whole second for live replay "
            f"(RFC 1123 Date headers carry whole seconds): {t!r}"
        )
    return value


async def _read_head(reader: asyncio.StreamReader) -> str:
    try:
        head = await reader.readuntil(_HEAD_TERMINATOR)
    except asyncio.LimitOverrunError as exc:
        raise LiveWireError("message head exceeds the framing limit") from exc
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise LiveConnectionClosed(
                "connection closed at message boundary"
            ) from exc
        raise LiveWireError("connection closed mid-head") from exc
    if len(head) > _MAX_HEAD_BYTES:
        raise LiveWireError("message head exceeds the framing limit")
    try:
        return head.decode("latin-1")
    except UnicodeDecodeError as exc:  # pragma: no cover - latin-1 total
        raise LiveWireError("undecodable message head") from exc


def _body_length(head_text: str) -> int:
    """Content-Length declared in a serialized head (0 when absent)."""
    for line in head_text.split("\r\n")[1:]:
        name, sep, value = line.partition(":")
        if sep and name.strip().lower() == CONTENT_LENGTH.lower():
            try:
                length = int(value.strip())
            except ValueError as exc:
                raise LiveWireError(
                    f"bad Content-Length: {value.strip()!r}"
                ) from exc
            if length < 0:
                raise LiveWireError(f"negative Content-Length: {length}")
            return length
    return 0


async def read_request(
    reader: asyncio.StreamReader,
) -> tuple[Request, int]:
    """Read one request off the stream.

    Returns:
        ``(request, wire_bytes)`` — the parsed request and the exact
        byte count consumed.  Requests never carry bodies.

    Raises:
        LiveWireError: on framing or parse errors.
    """
    head_text = await _read_head(reader)
    try:
        request = parse_request(head_text)
    except HTTPParseError as exc:
        raise LiveWireError(str(exc)) from exc
    return request, len(head_text)


async def read_response(
    reader: asyncio.StreamReader,
) -> tuple[Response, str, int]:
    """Read one response (head + ``Content-Length`` body) off the stream.

    Returns:
        ``(response, body_text, wire_bytes)``.  ``response.body_size``
        equals ``len(body_text)``; the metadata-only model discards
        content, so control-endpoint callers take the body separately.

    Raises:
        LiveWireError: on framing or parse errors.
    """
    head_text = await _read_head(reader)
    return await _finish_response(reader, head_text)


async def _read_body(
    reader: asyncio.StreamReader, head_text: str
) -> str:
    """Read the ``Content-Length``-delimited body declared by a head.

    Raises:
        LiveTruncationError: when the stream ends before the declared
            byte count — a short body is a framing fault distinct from
            a clean connection close.
    """
    length = _body_length(head_text)
    if not length:
        return ""
    try:
        raw_body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise LiveTruncationError(
            f"truncated body: Content-Length promised {length} bytes, "
            f"stream ended after {len(exc.partial)}"
        ) from exc
    return raw_body.decode("latin-1")


async def _finish_response(
    reader: asyncio.StreamReader, head_text: str
) -> tuple[Response, str, int]:
    body_text = await _read_body(reader, head_text)
    try:
        response = parse_response(head_text + body_text)
    except HTTPParseError as exc:
        raise LiveWireError(str(exc)) from exc
    return response, body_text, len(head_text) + len(body_text)


async def read_message(
    reader: asyncio.StreamReader,
) -> tuple[Union[Request, Response], str, int]:
    """Read one message — request or response — off the stream.

    The start line decides the shape: a head beginning ``HTTP/`` is a
    response (with a ``Content-Length``-delimited body), anything else
    is a request (bodiless).  Returns ``(message, body_text,
    wire_bytes)`` where ``wire_bytes`` is the exact byte count consumed
    and ``body_text`` is empty for requests.

    Raises:
        LiveWireError: on framing or parse errors;
            :class:`LiveTruncationError` specifically for a body
            shorter than its declared length, and
            :class:`LiveConnectionClosed` for a clean close before any
            byte of the message.
    """
    head_text = await _read_head(reader)
    if head_text.startswith("HTTP/"):
        return await _finish_response(reader, head_text)
    try:
        request = parse_request(head_text)
    except HTTPParseError as exc:
        raise LiveWireError(str(exc)) from exc
    return request, "", len(head_text)


async def write_message(writer: asyncio.StreamWriter, text: str) -> int:
    """Write a serialized message; returns the byte count sent."""
    payload = text.encode("latin-1")
    writer.write(payload)
    await writer.drain()
    return len(payload)


async def exchange(
    host: str, port: int, request: Request
) -> tuple[Response, str, int]:
    """One full client exchange: connect, send, read, close.

    Returns:
        ``(response, body_text, wire_bytes)`` where ``wire_bytes`` is
        the total sent plus received on this connection.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        sent = await write_message(writer, request.serialize())
        writer.write_eof()
        response, body_text, received = await read_response(reader)
    finally:
        writer.close()
        await writer.wait_closed()
    return response, body_text, sent + received


def wants_keepalive(request: Request) -> bool:
    """True when the request opts into connection reuse."""
    value = request.headers.get(CONNECTION)
    return value is not None and value.strip().lower() == KEEP_ALIVE


def pin_handler_task(handlers: set["asyncio.Task[None]"]) -> None:
    """Keep a strong reference to the running connection-handler task.

    Python 3.11's ``asyncio.start_server`` holds its per-connection
    tasks only weakly, so a garbage-collection pass can destroy an
    in-flight handler mid-await — the peer then sees its connection
    close with no reply and no exception is raised anywhere (CPython
    gh-104091, fixed in 3.12).  Every live server calls this at the top
    of its handler; the task unpins itself on completion.
    """
    task = asyncio.current_task()
    if task is not None:
        handlers.add(task)
        task.add_done_callback(handlers.discard)


async def cancel_handler_tasks(handlers: set["asyncio.Task[None]"]) -> None:
    """Cancel and await any pinned handler tasks still in flight.

    Servers call this from ``close()`` so teardown is deterministic:
    a handler abandoned mid-exchange (its client gave up after a chaos
    fault) must not outlive its listener.
    """
    pending = [task for task in handlers if not task.done()]
    for task in pending:
        task.cancel()
    if pending:
        await asyncio.gather(*pending, return_exceptions=True)


class LiveConnection:
    """A persistent client connection multiplexing sequential exchanges.

    The keep-alive counterpart of :func:`exchange`: the socket is opened
    lazily on the first request, every request is stamped
    ``Connection: keep-alive``, and the connection is reused until
    :meth:`close` — the server ends its side of the contract by looping
    on :func:`read_request` until :class:`LiveConnectionClosed`.

    One exchange may be in flight at a time (HTTP/1.0 has no pipelining
    and the drivers never need it); callers wanting parallelism hold a
    pool of these.
    """

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        #: Total bytes sent plus received over the connection's lifetime.
        self.wire_bytes = 0
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    @property
    def is_open(self) -> bool:
        """True while a socket is held (possibly already broken)."""
        return self._writer is not None

    async def request(self, request: Request) -> tuple[Response, str, int]:
        """Send one request and read its response on the shared socket.

        Returns ``(response, body_text, wire_bytes)`` for this exchange.

        Raises:
            LiveWireError: on framing errors (the caller should
                :meth:`close` and, if retrying, resend under the same
                ``X-Repro-Seq``).
            ConnectionError: when the transport fails mid-exchange.
        """
        if self._reader is None or self._writer is None:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )
        request.headers.set(CONNECTION, KEEP_ALIVE)
        sent = await write_message(self._writer, request.serialize())
        response, body_text, received = await read_response(self._reader)
        self.wire_bytes += sent + received
        return response, body_text, sent + received

    async def close(self) -> None:
        """Close the socket; the next :meth:`request` reconnects."""
        writer = self._writer
        self._reader = None
        self._writer = None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
