"""Socket framing for the live origin/proxy: HTTP/1.0, one exchange per
connection.

The live servers speak exactly what :mod:`repro.http.messages`
serializes: a request or status line, ``Name: value`` headers, a blank
line, and (for responses) a ``Content-Length``-delimited entity body.
HTTP/1.0 close-delimited bodies are deliberately not supported — every
live response carries an explicit ``Content-Length`` (or is a bodiless
304), so a reader always knows exactly how many bytes to consume and
the byte count on the wire equals ``Response.wire_size()``.

Simulation time travels in ``Date`` headers (RFC 1123, whole seconds).
:func:`ensure_integral` is the gate that keeps a live run wire-exact:
any fractional timestamp would be floored by the header round trip and
the live replay could no longer match the simulator bit-for-bit.
Extended-CLF traces satisfy the constraint by construction (CLF has
one-second granularity).
"""

from __future__ import annotations

import asyncio

from repro.http.headers import CONTENT_LENGTH
from repro.http.messages import (
    HTTPParseError,
    Request,
    Response,
    parse_request,
    parse_response,
)

#: Header carrying the request's simulation time (RFC 1123 date).
DATE = "Date"
#: Proxy response header naming the serving path: HIT / REVALIDATED /
#: MISS (body transferred) — the live analogue of the simulator's
#: hit/validation_304/miss outcomes.
X_CACHE = "X-Cache"
#: HTTP/1.0 non-cacheability marker the origin attaches to dynamic
#: objects ("Pragma: no-cache"); the proxy never stores such responses.
PRAGMA = "Pragma"
#: Marks cache-warming fetches; the origin serves but does not count
#: them, mirroring the simulator's uncounted preload.
WARMUP_HEADER = "X-Repro-Warmup"
#: Path prefix for the out-of-band control endpoints (population,
#: invalidation feed, stats); control exchanges are never counted.
CONTROL_PREFIX = "/.well-known/repro/"

#: Hard cap on a message head (start line + headers); a peer sending
#: more is malformed, not large.
_MAX_HEAD_BYTES = 65536

_HEAD_TERMINATOR = b"\r\n\r\n"


class LiveWireError(ValueError):
    """A live peer sent something the HTTP/1.0 framing cannot carry."""


class LiveReplayError(ValueError):
    """A live replay was configured with inputs that cannot be
    wire-exact (fractional timestamps, unordered requests, ...)."""


def ensure_integral(t: float, what: str) -> float:
    """Require ``t`` to be a whole simulation second; return it.

    Wire transport rounds times to whole seconds (RFC 1123 dates), so a
    fractional timestamp anywhere in a live run's inputs would make the
    live and simulated accounting diverge by construction.

    Raises:
        LiveReplayError: when ``t`` has a fractional part.
    """
    value = float(t)
    if not value.is_integer():
        raise LiveReplayError(
            f"{what} must be a whole second for live replay "
            f"(RFC 1123 Date headers carry whole seconds): {t!r}"
        )
    return value


async def _read_head(reader: asyncio.StreamReader) -> str:
    try:
        head = await reader.readuntil(_HEAD_TERMINATOR)
    except asyncio.LimitOverrunError as exc:
        raise LiveWireError("message head exceeds the framing limit") from exc
    except asyncio.IncompleteReadError as exc:
        raise LiveWireError("connection closed mid-head") from exc
    if len(head) > _MAX_HEAD_BYTES:
        raise LiveWireError("message head exceeds the framing limit")
    try:
        return head.decode("latin-1")
    except UnicodeDecodeError as exc:  # pragma: no cover - latin-1 total
        raise LiveWireError("undecodable message head") from exc


def _body_length(head_text: str) -> int:
    """Content-Length declared in a serialized head (0 when absent)."""
    for line in head_text.split("\r\n")[1:]:
        name, sep, value = line.partition(":")
        if sep and name.strip().lower() == CONTENT_LENGTH.lower():
            try:
                length = int(value.strip())
            except ValueError as exc:
                raise LiveWireError(
                    f"bad Content-Length: {value.strip()!r}"
                ) from exc
            if length < 0:
                raise LiveWireError(f"negative Content-Length: {length}")
            return length
    return 0


async def read_request(
    reader: asyncio.StreamReader,
) -> tuple[Request, int]:
    """Read one request off the stream.

    Returns:
        ``(request, wire_bytes)`` — the parsed request and the exact
        byte count consumed.  Requests never carry bodies.

    Raises:
        LiveWireError: on framing or parse errors.
    """
    head_text = await _read_head(reader)
    try:
        request = parse_request(head_text)
    except HTTPParseError as exc:
        raise LiveWireError(str(exc)) from exc
    return request, len(head_text)


async def read_response(
    reader: asyncio.StreamReader,
) -> tuple[Response, str, int]:
    """Read one response (head + ``Content-Length`` body) off the stream.

    Returns:
        ``(response, body_text, wire_bytes)``.  ``response.body_size``
        equals ``len(body_text)``; the metadata-only model discards
        content, so control-endpoint callers take the body separately.

    Raises:
        LiveWireError: on framing or parse errors.
    """
    head_text = await _read_head(reader)
    length = _body_length(head_text)
    if length:
        try:
            raw_body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise LiveWireError("connection closed mid-body") from exc
        body_text = raw_body.decode("latin-1")
    else:
        body_text = ""
    try:
        response = parse_response(head_text + body_text)
    except HTTPParseError as exc:
        raise LiveWireError(str(exc)) from exc
    return response, body_text, len(head_text) + length


async def write_message(writer: asyncio.StreamWriter, text: str) -> int:
    """Write a serialized message; returns the byte count sent."""
    payload = text.encode("latin-1")
    writer.write(payload)
    await writer.drain()
    return len(payload)


async def exchange(
    host: str, port: int, request: Request
) -> tuple[Response, str, int]:
    """One full client exchange: connect, send, read, close.

    Returns:
        ``(response, body_text, wire_bytes)`` where ``wire_bytes`` is
        the total sent plus received on this connection.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        sent = await write_message(writer, request.serialize())
        writer.write_eof()
        response, body_text, received = await read_response(reader)
    finally:
        writer.close()
        await writer.wait_closed()
    return response, body_text, sent + received
