"""The live load driver: replay a synthetic trace over real sockets.

:func:`replay_live` plays a ``(time, object_id)`` request stream — the
same stream :func:`repro.core.simulator.simulate` consumes — against a
running :class:`~repro.live.origin.LiveOrigin` /
:class:`~repro.live.proxy.LiveProxy` pair, one real HTTP/1.0 exchange
per request, and assembles the run into the very same
:class:`~repro.core.results.SimulationResult` shape the simulator
returns.  That shared shape is what lets the differential leg
(:mod:`repro.live.differential`) diff a live run against a simulated
one field-for-field.

Two pieces of the result cannot be observed inside the proxy and are
assembled here:

* **server-side load** (``server_gets``, ``server_ims_queries``) comes
  from the origin's own counters, fetched over its stats control
  endpoint — so the invariant ``server_gets == full_retrievals +
  prefetches`` is a genuine two-machine cross-check, not a tautology;
* **staleness ground truth** (``stale_hits``, ``stale_age_sum``): the
  proxy cannot know it served a stale copy — that is the *point* of
  weak consistency.  The driver audits every ``X-Cache: HIT`` response
  against the origin's modification schedule, exactly as the
  simulator's omniscient hit branch does.  For the leased protocol the
  audit also *enforces* the lease's structural staleness bound: a stale
  serve as old as the lease term is a consistency violation, chaos or
  no chaos.

:func:`replay_pooled` is the concurrent driver: the stream is
partitioned by object across a pool of keep-alive connections
(per-object order preserved — exactly the ordering the per-object-locked
proxy requires), every request carries an ``X-Repro-Seq`` idempotency
id, and transport failures are retried — the committed reply replays, so
accounting stays exactly-once over an at-least-once transport.
:func:`run_replay` picks the driver, wires optional
:class:`~repro.live.chaos.ChaosRelay` hops around the proxy, and
:func:`run_crash_replay` runs the proxy *out of process* so a monkey
task can SIGKILL it mid-replay and restart it from its journal.

:func:`check_wire_exact` gates a replay up front: every timestamp the
run touches must be a whole second, because simulation time travels in
RFC 1123 ``Date`` headers.  A fractional modification time would be
floored in transit and the live accounting would silently diverge from
the simulator — better to refuse loudly.
"""

from __future__ import annotations

import asyncio
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Awaitable, Callable, Iterable, Optional, Sequence, Union

from repro.core.costs import DEFAULT_COSTS, MessageCosts
from repro.core.metrics import BandwidthLedger, ConsistencyCounters
from repro.core.protocols.base import ConsistencyProtocol
from repro.core.protocols.factory import build_protocol
from repro.core.results import SimulationResult
from repro.core.server import OriginServer
from repro.core.simulator import SimulatorMode
from repro.fastpath.contract import COUNTER_FIELDS
from repro.faults.plan import FaultPlan
from repro.http.messages import Request, Response
from repro.live.chaos import ChaosRelay, WireFaultPlan
from repro.live.journal import Journal
from repro.live.origin import LiveOrigin
from repro.live.proxy import LiveProxy
from repro.live.wire import (
    CONTROL_PREFIX,
    DATE,
    SEQ_HEADER,
    TRACE_HEADER,
    X_CACHE,
    LiveConnection,
    LiveReplayError,
    LiveWireError,
    ensure_integral,
    exchange,
)
from repro.obs import clock as obs_clock
from repro.obs import registry as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.timeline import role_trace_paths

#: Pause before reconnecting after a refused/reset connection — long
#: enough for a killed proxy to be respawned, short enough that a chaos
#: retry burst stays fast.
_RECONNECT_PAUSE = 0.05
#: Retry budget for driving through a proxy restart: the outage window
#: (kill, respawn, journal replay) divided by the reconnect pause, with
#: a generous margin.
_CRASH_ATTEMPTS = 240


@dataclass
class LiveReplayReport:
    """Everything one live replay produced.

    Attributes:
        result: the run in the simulator's result shape — counters,
            bandwidth ledger (abstract :class:`MessageCosts` bytes),
            duration.  This is the side diffed against ``simulate()``.
        wire_bytes: actual bytes moved on sockets across the whole
            replay (warmup and control exchanges included) — the
            live-only measurement, deliberately *not* part of the diff.
        origin_gets: full retrievals the origin counted.
        origin_ims_queries: If-Modified-Since exchanges the origin
            counted.
        events: the proxy's committed event log (hardened modes only) —
            ``(kind, time, object_id)`` triples, the live counterpart
            of the simulator's observer stream.
        stale_events: the ``(time, object_id)`` pairs the driver's
            audit found stale — the key for relabelling live ``hit``
            events as ``stale_hit`` when diffing event multisets.
    """

    result: SimulationResult
    wire_bytes: int = 0
    origin_gets: int = 0
    origin_ims_queries: int = 0
    events: list[tuple[str, float, str]] = field(default_factory=list)
    stale_events: list[tuple[float, str]] = field(default_factory=list)


def check_wire_exact(
    server: OriginServer,
    requests: Sequence[tuple[float, str]],
    *,
    start_time: float = 0.0,
    end_time: Optional[float] = None,
) -> None:
    """Refuse inputs that cannot survive wire transport bit-for-bit.

    Raises:
        LiveReplayError: on any fractional timestamp (request times,
            object creation times, modification times, expiry
            lifetimes, the run window edges) or an unordered request
            stream.
    """
    ensure_integral(start_time, "start_time")
    if end_time is not None:
        ensure_integral(end_time, "end_time")
    previous = float(start_time)
    for t, object_id in requests:
        ensure_integral(t, f"request time for {object_id!r}")
        if t < previous:
            raise LiveReplayError(
                f"request stream is not time-ordered: {t!r} after "
                f"{previous!r} ({object_id!r})"
            )
        previous = float(t)
    for object_id, history in server.histories().items():
        ensure_integral(history.obj.created, f"{object_id!r} creation time")
        if history.obj.expires_after is not None:
            ensure_integral(
                history.obj.expires_after, f"{object_id!r} expires_after"
            )
        for mod_time in history.schedule.times:
            ensure_integral(mod_time, f"{object_id!r} modification time")


async def _control_get(
    host: str,
    port: int,
    endpoint: str,
    *,
    date: Optional[float] = None,
) -> str:
    request = Request("GET", CONTROL_PREFIX + endpoint)
    if date is not None:
        request.headers.set_date(DATE, date)
    response, body, _ = await exchange(host, port, request)
    if response.status != 200:
        raise LiveWireError(
            f"control endpoint {endpoint!r} returned {response.status}: "
            f"{body.strip()!r}"
        )
    return body


def _audit_hit(
    server: OriginServer,
    response: Response,
    t: float,
    object_id: str,
    lease: Optional[float],
) -> Optional[float]:
    """Audit one ``X-Cache: HIT`` response against ground truth.

    Returns ``None`` for a hit that was actually fresh, or the stale
    age to accumulate (0.0 when the change point is unknown).  For a
    leased protocol, enforces the lease's structural bound: a stale
    serve must be strictly younger than the lease term — that holds
    even under invalidation faults (a leased entry is only served
    within ``lease`` of its last validation), so a violation is a real
    consistency bug, not expected chaos.

    Raises:
        LiveWireError: when a hit lacks ``Last-Modified``.
        LiveReplayError: when the lease staleness bound is violated.
    """
    last_modified = response.headers.last_modified
    if last_modified is None:
        raise LiveWireError(
            f"cache hit for {object_id!r} lacks Last-Modified"
        )
    schedule = server.schedule(object_id)
    if last_modified >= schedule.last_modified_at(t):
        return None
    became_stale = schedule.next_change_after(last_modified)
    if became_stale is None:
        return 0.0
    age = t - became_stale
    if lease is not None and age >= lease:
        raise LiveReplayError(
            f"lease staleness bound violated for {object_id!r}: stale "
            f"copy served at t={t!r} was {age!r}s old, lease is "
            f"{lease!r}s"
        )
    return age


def _assemble_report(
    proxy_stats: dict[str, object],
    origin_stats: dict[str, object],
    *,
    protocol_name: str,
    mode_value: str,
    duration: float,
    wire_bytes: int,
    stale_hits: int,
    stale_age_sum: float,
    stale_events: list[tuple[float, str]],
) -> LiveReplayReport:
    """Fold proxy stats, origin stats, and the driver audit into a report."""
    proxy_counters = proxy_stats["counters"]
    assert isinstance(proxy_counters, dict)
    counters = ConsistencyCounters(
        **{
            name: int(proxy_counters[name])
            for name in COUNTER_FIELDS
            if name != "stale_age_sum"
        },
        stale_age_sum=float(proxy_counters["stale_age_sum"]),
    )
    counters.stale_hits = stale_hits
    counters.stale_age_sum = stale_age_sum
    counters.server_gets = int(origin_stats["gets"])  # type: ignore[call-overload]
    counters.server_ims_queries = int(origin_stats["ims_queries"])  # type: ignore[call-overload]

    tables = proxy_stats["bandwidth"]
    assert isinstance(tables, dict)
    bandwidth = BandwidthLedger(
        control_bytes={
            k: int(v) for k, v in tables["control_bytes"].items()
        },
        body_bytes={k: int(v) for k, v in tables["body_bytes"].items()},
        exchanges={k: int(v) for k, v in tables["exchanges"].items()},
    )

    result = SimulationResult(
        protocol_name=protocol_name,
        mode=mode_value,
        counters=counters,
        bandwidth=bandwidth,
        duration=duration,
    )
    result.counters.check_invariants()
    raw_events = proxy_stats.get("events", [])
    assert isinstance(raw_events, list)
    return LiveReplayReport(
        result=result,
        wire_bytes=wire_bytes,
        origin_gets=int(origin_stats["gets"]),  # type: ignore[call-overload]
        origin_ims_queries=int(origin_stats["ims_queries"]),  # type: ignore[call-overload]
        events=[
            (str(kind), float(t), str(oid)) for kind, t, oid in raw_events
        ],
        stale_events=stale_events,
    )


async def replay_live(
    origin: LiveOrigin,
    proxy: LiveProxy,
    requests: Iterable[tuple[float, str]],
    *,
    start_time: float = 0.0,
    end_time: Optional[float] = None,
    trace: Optional[obs_trace.TraceSink] = None,
) -> LiveReplayReport:
    """Replay a request stream serially — the historical driver.

    Both servers must already be started.  The proxy is warmed first
    (pre-loaded with valid copies of the population, uncounted), then
    each request becomes one real client exchange carrying its
    simulation time in a ``Date`` header — one connection per exchange,
    no sequence ids: with a zero-fault transport and a single client
    the wire traffic stays byte-identical to what it always was.

    With ``trace``, every request is stamped with a deterministic
    ``X-Repro-Trace`` id (``r<stream index>``) and the driver records
    its side of the exchange — send/done marks plus a
    ``live.trace.exchange`` span — so the per-role trace files can be
    merged into one causal timeline (``docs/OBSERVABILITY.md``).
    Tracing adds a header to the wire, so traced runs are not
    byte-identical to historical untraced ones.

    Returns:
        A :class:`LiveReplayReport`; ``report.result.counters`` has
        passed :meth:`ConsistencyCounters.check_invariants`.

    Raises:
        LiveReplayError: when the inputs cannot be wire-exact.
        LiveWireError: on protocol errors from either live server.
    """
    replay_started = obs_clock.monotonic()
    request_list = list(requests)
    check_wire_exact(
        origin.server, request_list, start_time=start_time, end_time=end_time
    )
    await proxy.warm(start_time)
    lease = getattr(proxy.protocol, "lease", None)

    stale_hits = 0
    stale_age_sum = 0.0
    stale_events: list[tuple[float, str]] = []
    last_time = float(start_time)
    for index, (t, object_id) in enumerate(request_list):
        request = Request("GET", object_id)
        request.headers.set_date(DATE, t)
        tid: Optional[str] = None
        send_clk = 0.0
        if trace is not None:
            tid = f"r{index}"
            request.headers.set(TRACE_HEADER, tid)
            send_clk = obs_clock.monotonic()
            trace.mark("live.trace.send", tid, send_clk)
        response, _, _ = await exchange(proxy.host, proxy.port, request)
        if trace is not None:
            done_clk = obs_clock.monotonic()
            trace.mark("live.trace.done", tid, done_clk)
            trace.span(
                "live.trace.exchange",
                done_clk - send_clk,
                {
                    "trace": tid,
                    "clk": done_clk,
                    "object": object_id,
                    "t": float(t),
                    "verdict": response.headers.get(X_CACHE),
                },
            )
        if response.status != 200:
            raise LiveWireError(
                f"proxy returned {response.status} for {object_id!r} "
                f"at t={t!r}"
            )
        last_time = float(t)
        if response.headers.get(X_CACHE) != "HIT":
            continue
        # Staleness audit: only unvalidated cache hits can be stale,
        # and only the driver (holding the origin's ground truth) can
        # tell — mirroring the simulator's omniscient hit branch.
        age = _audit_hit(origin.server, response, t, object_id, lease)
        if age is not None:
            stale_hits += 1
            stale_age_sum += age
            stale_events.append((float(t), object_id))

    if end_time is not None:
        await _control_get(proxy.host, proxy.port, "finish", date=end_time)
        last_time = float(end_time)

    proxy_stats = json.loads(
        await _control_get(proxy.host, proxy.port, "stats")
    )
    origin_stats = json.loads(
        await _control_get(origin.host, origin.port, "stats")
    )
    report = _assemble_report(
        proxy_stats,
        origin_stats,
        protocol_name=proxy.protocol.name,
        mode_value=proxy.mode.value,
        duration=last_time - float(start_time),
        wire_bytes=proxy.wire_bytes,
        stale_hits=stale_hits,
        stale_age_sum=stale_age_sum,
        stale_events=stale_events,
    )
    obs_trace.span(
        "live.replay",
        obs_clock.monotonic() - replay_started,
        requests=len(request_list),
        wire_bytes=report.wire_bytes,
    )
    return report


def _partition(
    request_list: Sequence[tuple[float, str]], connections: int
) -> list[list[tuple[int, float, str]]]:
    """Split the stream into per-connection buckets by object affinity.

    Every request for one object lands in the same bucket (objects are
    assigned round-robin by first appearance), and each bucket keeps
    its requests in stream order — so per-object request order is
    preserved, which is the only ordering the per-object-locked proxy
    requires.  Items carry their global stream index for sequence ids
    and (cross-object protocols) global-order gating.
    """
    bucket_of: dict[str, int] = {}
    buckets: list[list[tuple[int, float, str]]] = [
        [] for _ in range(connections)
    ]
    for index, (t, object_id) in enumerate(request_list):
        if object_id not in bucket_of:
            bucket_of[object_id] = len(bucket_of) % connections
        buckets[bucket_of[object_id]].append((index, float(t), object_id))
    return buckets


async def _request_with_retry(
    send: Callable[[], Awaitable[tuple[Response, str, int]]],
    reset: Callable[[], Awaitable[None]],
    what: str,
    *,
    attempts: int,
    pause: float,
    trace: Optional[str] = None,
    sink: Optional[obs_trace.TraceSink] = None,
) -> tuple[Response, str, int]:
    """Drive one exchange to success over an at-least-once transport.

    Any transport or framing failure closes the connection and resends
    (the request's ``X-Repro-Seq`` makes the receiver replay, not
    re-execute).  Connection-level failures pause before reconnecting —
    that is what lets a driver ride through a proxy restart.

    A retry mark is emitted next to the ``live.retries`` counter (same
    branch, same count — ``repro trace summarize`` cross-checks the two)
    whenever ``sink`` is present; ``trace`` carries the exchange's
    propagated id.
    """
    last: Optional[BaseException] = None
    for attempt in range(attempts):
        if attempt:
            obs_metrics.emit("live.retries")
            if sink is not None:
                sink.mark(
                    "live.trace.retry",
                    trace,
                    obs_clock.monotonic(),
                    hop="client",
                )
        try:
            return await send()
        except (LiveWireError, ConnectionError, OSError) as exc:
            last = exc
            await reset()
            if pause > 0 and isinstance(exc, (ConnectionError, OSError)):
                await asyncio.sleep(pause)
    raise LiveWireError(
        f"{what} failed after {attempts} attempts: {last!r}"
    )


async def replay_pooled(
    origin: LiveOrigin,
    proxy_host: str,
    proxy_port: int,
    requests: Sequence[tuple[float, str]],
    *,
    connections: int = 2,
    keepalive: bool = True,
    cross_object: bool = False,
    lease: Optional[float] = None,
    attempts: int = 1,
    pause: float = 0.0,
    on_complete: Optional[Callable[[], None]] = None,
    trace: Optional[obs_trace.TraceSink] = None,
) -> tuple[int, float, list[tuple[float, str]], float]:
    """Drive the request stream through a connection pool.

    The stream is partitioned by object (:func:`_partition`); each
    bucket is driven by one worker over one keep-alive connection (or
    one-shot exchanges when ``keepalive`` is off).  Every request
    carries ``X-Repro-Seq: r<index>`` so retries are exactly-once.
    ``cross_object`` protocols additionally gate every send on the
    global stream index — their state couples objects, so only the
    fully serialized order matches the simulator.

    With ``trace``, requests additionally carry ``X-Repro-Trace``
    (same ``r<index>`` value as the sequence id) and the driver records
    a send mark *per attempt*, a done mark, and a
    ``live.trace.exchange`` span per completed exchange.

    Returns:
        ``(stale_hits, stale_age_sum, stale_events, last_time)`` from
        the driver's staleness audit.
    """
    buckets = _partition(requests, max(1, connections))
    hits: list[tuple[float, str, Response]] = []
    gate = asyncio.Condition() if cross_object else None
    state = {"next": 0}

    async def drive(bucket: list[tuple[int, float, str]]) -> None:
        conn = LiveConnection(proxy_host, proxy_port)
        try:
            for index, t, object_id in bucket:
                request = Request("GET", object_id)
                request.headers.set_date(DATE, t)
                request.headers.set(SEQ_HEADER, f"r{index}")
                tid: Optional[str] = None
                if trace is not None:
                    tid = f"r{index}"
                    request.headers.set(TRACE_HEADER, tid)

                async def send() -> tuple[Response, str, int]:
                    # One send mark per attempt: a retried exchange has
                    # several sends but one done, and the timeline's
                    # happens-before check uses the earliest send.
                    if trace is not None:
                        trace.mark(
                            "live.trace.send", tid, obs_clock.monotonic()
                        )
                    if keepalive:
                        return await conn.request(request)
                    return await exchange(proxy_host, proxy_port, request)

                if gate is not None:
                    async with gate:
                        await gate.wait_for(
                            lambda: state["next"] == index  # noqa: B023
                        )
                exchange_started = (
                    obs_clock.monotonic() if trace is not None else 0.0
                )
                try:
                    response, _, _ = await _request_with_retry(
                        send,
                        conn.close,
                        f"request r{index} for {object_id!r}",
                        attempts=attempts,
                        pause=pause,
                        trace=tid,
                        sink=trace,
                    )
                finally:
                    if gate is not None:
                        async with gate:
                            state["next"] = index + 1
                            gate.notify_all()
                if trace is not None:
                    done_clk = obs_clock.monotonic()
                    trace.mark("live.trace.done", tid, done_clk)
                    trace.span(
                        "live.trace.exchange",
                        done_clk - exchange_started,
                        {
                            "trace": tid,
                            "clk": done_clk,
                            "object": object_id,
                            "t": float(t),
                            "verdict": response.headers.get(X_CACHE),
                        },
                    )
                if response.status != 200:
                    raise LiveWireError(
                        f"proxy returned {response.status} for "
                        f"{object_id!r} at t={t!r}"
                    )
                if response.headers.get(X_CACHE) == "HIT":
                    hits.append((t, object_id, response))
                if on_complete is not None:
                    on_complete()
        finally:
            await conn.close()

    workers = [
        asyncio.create_task(drive(bucket)) for bucket in buckets if bucket
    ]
    try:
        await asyncio.gather(*workers)
    except BaseException:
        # First failure cancels the siblings: left alone they would
        # keep retrying (240 attempts in crash mode), hold connections,
        # and — cross_object — wait forever on a gate that can no
        # longer open.
        for worker in workers:
            worker.cancel()
        await asyncio.gather(*workers, return_exceptions=True)
        raise

    stale_hits = 0
    stale_age_sum = 0.0
    stale_events: list[tuple[float, str]] = []
    for t, object_id, response in hits:
        age = _audit_hit(origin.server, response, t, object_id, lease)
        if age is not None:
            stale_hits += 1
            stale_age_sum += age
            stale_events.append((float(t), object_id))
    last_time = max((float(t) for t, _ in requests), default=0.0)
    return stale_hits, stale_age_sum, stale_events, last_time


async def run_replay(
    server: OriginServer,
    protocol: ConsistencyProtocol,
    requests: Iterable[tuple[float, str]],
    mode: SimulatorMode = SimulatorMode.OPTIMIZED,
    *,
    costs: MessageCosts = DEFAULT_COSTS,
    start_time: float = 0.0,
    end_time: Optional[float] = None,
    charge_per_modification: bool = True,
    connections: int = 1,
    keepalive: bool = False,
    chaos: Optional[WireFaultPlan] = None,
    faults: Optional[FaultPlan] = None,
    journal_path: Optional[Union[str, Path]] = None,
    trace_path: Optional[Union[str, Path]] = None,
) -> LiveReplayReport:
    """Boot an ephemeral origin/proxy pair on loopback, replay, tear down.

    The one-call form for callers that do not need to keep the servers
    running — the CLI's ``repro replay`` and the differential leg both
    go through here, so they exercise the identical code path.

    Beyond the historical serial replay, this orchestrates the hardened
    topologies:

    * ``connections > 1`` / ``keepalive`` — the pooled driver against a
      per-object-locked proxy (``concurrent=True`` unless the protocol
      declares ``cross_object_state``, which serializes globally);
    * ``chaos`` — a :class:`~repro.live.chaos.ChaosRelay` on *both*
      hops (driver↔proxy and proxy↔origin); driver and proxy retry
      budgets are sized from the plan's progress cap.  Control
      exchanges (warm/finish/stats) bypass the relays: they are the
      harness's measurement plane, not modelled traffic.
    * ``faults`` — a compiled invalidation :class:`FaultPlan` replayed
      inside the proxy, mirroring ``simulate(faults=plan)``.  Serial
      only (the schedule is a global timeline).
    * ``journal_path`` — commit-before-reply journaling, enabling
      :func:`run_crash_replay`-style restarts.
    * ``trace_path`` — cross-process causal tracing: each role (driver,
      proxy, origin) records into its own
      :class:`~repro.obs.trace.TraceSink`, and on teardown — success
      *or* failure; the trace of a failing run is the valuable one —
      three JSONL files are written: ``trace_path`` for the driver plus
      ``.proxy`` / ``.origin`` companions
      (:func:`repro.obs.timeline.role_trace_paths`).  Chaos relays are
      harness machinery, so their marks land in the driver's file.
      ``repro trace merge`` joins the three into one timeline.
    """
    chaos_active = chaos is not None and not chaos.is_null
    pooled = connections > 1 or keepalive or chaos_active
    if faults is not None and pooled:
        raise LiveReplayError(
            "faulted live replays are serial: faults= cannot be "
            "combined with connections>1, keepalive, or chaos"
        )
    request_list = list(requests)
    driver_trace = proxy_trace = origin_trace = None
    if trace_path is not None:
        driver_trace = obs_trace.TraceSink(proc="driver")
        proxy_trace = obs_trace.TraceSink(proc="proxy")
        origin_trace = obs_trace.TraceSink(proc="origin")
    origin = LiveOrigin(server, trace=origin_trace)
    await origin.start()
    relays: list[ChaosRelay] = []
    try:
        upstream_host, upstream_port = origin.host, origin.port
        if chaos_active:
            assert chaos is not None
            upstream_relay = ChaosRelay(
                origin.host, origin.port, chaos, "upstream",
                trace=driver_trace,
            )
            await upstream_relay.start()
            relays.append(upstream_relay)
            upstream_host, upstream_port = (
                upstream_relay.host,
                upstream_relay.port,
            )
        proxy = LiveProxy(
            upstream_host,
            upstream_port,
            protocol,
            mode,
            costs=costs,
            charge_per_modification=charge_per_modification,
            # Cross-object protocols still downgrade to the global lock
            # inside the proxy; "concurrent" here marks the hardened
            # topology (events collected, seq replay active).
            concurrent=pooled,
            faults=faults,
            journal=(
                Journal(journal_path) if journal_path is not None else None
            ),
            upstream_attempts=(
                chaos.max_attempts if chaos_active and chaos else 1
            ),
            trace=proxy_trace,
        )
        await proxy.start()
        try:
            if not pooled:
                return await replay_live(
                    origin,
                    proxy,
                    request_list,
                    start_time=start_time,
                    end_time=end_time,
                    trace=driver_trace,
                )
            client_host, client_port = proxy.host, proxy.port
            if chaos_active:
                assert chaos is not None
                client_relay = ChaosRelay(
                    proxy.host, proxy.port, chaos, "client",
                    trace=driver_trace,
                )
                await client_relay.start()
                relays.append(client_relay)
                client_host, client_port = (
                    client_relay.host,
                    client_relay.port,
                )
            replay_started = obs_clock.monotonic()
            check_wire_exact(
                server,
                request_list,
                start_time=start_time,
                end_time=end_time,
            )
            await proxy.warm(start_time)
            stale_hits, stale_age_sum, stale_events, last_time = (
                await replay_pooled(
                    origin,
                    client_host,
                    client_port,
                    request_list,
                    connections=connections,
                    keepalive=keepalive,
                    cross_object=protocol.cross_object_state,
                    lease=getattr(protocol, "lease", None),
                    attempts=(
                        chaos.max_attempts if chaos_active and chaos else 1
                    ),
                    trace=driver_trace,
                )
            )
            last_time = max(last_time, float(start_time))
            if end_time is not None:
                await _control_get(
                    proxy.host, proxy.port, "finish", date=end_time
                )
                last_time = float(end_time)
            proxy_stats = json.loads(
                await _control_get(proxy.host, proxy.port, "stats")
            )
            origin_stats = json.loads(
                await _control_get(origin.host, origin.port, "stats")
            )
            report = _assemble_report(
                proxy_stats,
                origin_stats,
                protocol_name=proxy.protocol.name,
                mode_value=proxy.mode.value,
                duration=last_time - float(start_time),
                wire_bytes=proxy.wire_bytes,
                stale_hits=stale_hits,
                stale_age_sum=stale_age_sum,
                stale_events=stale_events,
            )
            obs_trace.span(
                "live.replay",
                obs_clock.monotonic() - replay_started,
                requests=len(request_list),
                wire_bytes=report.wire_bytes,
            )
            return report
        finally:
            await proxy.close()
    finally:
        for relay in relays:
            await relay.close()
        await origin.close()
        if trace_path is not None:
            assert driver_trace and proxy_trace and origin_trace
            paths = role_trace_paths(trace_path)
            obs_trace.write_jsonl(driver_trace, paths["driver"])
            obs_trace.write_jsonl(proxy_trace, paths["proxy"])
            obs_trace.write_jsonl(origin_trace, paths["origin"])


async def _spawn_standalone(
    *,
    origin_host: str,
    origin_port: int,
    port: int,
    protocol_name: str,
    parameter: float,
    mode: SimulatorMode,
    journal_path: Union[str, Path],
    charge_per_modification: bool,
    concurrent: bool,
) -> tuple[asyncio.subprocess.Process, int]:
    """Start ``python -m repro.live.standalone`` and wait for its port."""
    argv = [
        sys.executable,
        "-m",
        "repro.live.standalone",
        "--origin-host",
        origin_host,
        "--origin-port",
        str(origin_port),
        "--port",
        str(port),
        "--protocol",
        protocol_name,
        "--parameter",
        repr(parameter),
        "--mode",
        mode.value,
        "--journal",
        str(journal_path),
    ]
    if concurrent:
        argv.append("--concurrent")
    if not charge_per_modification:
        argv.append("--charge-on-transition")
    proc = await asyncio.create_subprocess_exec(
        *argv,
        stdout=asyncio.subprocess.PIPE,
    )
    assert proc.stdout is not None
    line = (await proc.stdout.readline()).decode()
    if not line.startswith("PORT "):
        raise LiveReplayError(
            f"standalone proxy failed to start (got {line!r})"
        )
    return proc, int(line.split()[1])


async def run_crash_replay(
    server: OriginServer,
    protocol_name: str,
    parameter: float,
    requests: Sequence[tuple[float, str]],
    mode: SimulatorMode = SimulatorMode.OPTIMIZED,
    *,
    start_time: float = 0.0,
    end_time: Optional[float] = None,
    charge_per_modification: bool = True,
    journal_path: Union[str, Path],
    crash_after: int,
    connections: int = 2,
    keepalive: bool = True,
) -> LiveReplayReport:
    """Replay with the proxy out of process, SIGKILLed and restarted.

    The crash-restart differential leg: the proxy runs as its own
    process (``python -m repro.live.standalone``) journaling every
    committed transaction; once ``crash_after`` requests have
    completed, a monkey task SIGKILLs it mid-replay, respawns it on
    the same port with the same journal, and the restarted proxy
    re-warms from disk (:meth:`LiveProxy.restore`) — re-pulling each
    object's missed invalidation window lazily through its per-object
    cursors.  Workers ride through the outage by retrying under their
    requests' sequence ids, so the final counters must reconcile
    *exactly* with a crash-free run — which is what
    :func:`repro.live.differential.crash_vs_sim` asserts.

    The protocol is named, not passed: the child process builds its own
    instance via :func:`repro.core.protocols.factory.build_protocol`
    (costs are therefore fixed at :data:`DEFAULT_COSTS`).

    Raises:
        LiveReplayError: unless ``0 < crash_after < len(requests)``
            (the monkey must fire while work remains, or it would wait
            forever).
    """
    request_list = list(requests)
    if not 0 < crash_after < len(request_list):
        raise LiveReplayError(
            f"crash_after must fall inside the request stream: "
            f"0 < {crash_after} < {len(request_list)} required"
        )
    check_wire_exact(
        server, request_list, start_time=start_time, end_time=end_time
    )
    protocol = build_protocol(protocol_name, parameter)
    concurrent = not protocol.cross_object_state
    lease = getattr(protocol, "lease", None)
    replay_started = obs_clock.monotonic()

    origin = LiveOrigin(server)
    await origin.start()
    try:
        proc, proxy_port = await _spawn_standalone(
            origin_host=origin.host,
            origin_port=origin.port,
            port=0,
            protocol_name=protocol_name,
            parameter=parameter,
            mode=mode,
            journal_path=journal_path,
            charge_per_modification=charge_per_modification,
            concurrent=concurrent,
        )
        try:
            await _control_get(
                "127.0.0.1", proxy_port, "warm", date=start_time
            )

            completed = {"count": 0}
            crashed = asyncio.Event()

            def on_complete() -> None:
                completed["count"] += 1
                if completed["count"] >= crash_after:
                    crashed.set()

            async def monkey() -> None:
                nonlocal proc
                await crashed.wait()
                proc.kill()
                await proc.wait()
                proc, _ = await _spawn_standalone(
                    origin_host=origin.host,
                    origin_port=origin.port,
                    port=proxy_port,
                    protocol_name=protocol_name,
                    parameter=parameter,
                    mode=mode,
                    journal_path=journal_path,
                    charge_per_modification=charge_per_modification,
                    concurrent=concurrent,
                )

            monkey_task = asyncio.create_task(monkey())
            try:
                stale_hits, stale_age_sum, stale_events, last_time = (
                    await replay_pooled(
                        origin,
                        "127.0.0.1",
                        proxy_port,
                        request_list,
                        connections=connections,
                        keepalive=keepalive,
                        cross_object=protocol.cross_object_state,
                        lease=lease,
                        attempts=_CRASH_ATTEMPTS,
                        pause=_RECONNECT_PAUSE,
                        on_complete=on_complete,
                    )
                )
                await monkey_task
            except BaseException:
                monkey_task.cancel()
                raise
            last_time = max(last_time, float(start_time))
            if end_time is not None:
                await _control_get(
                    "127.0.0.1", proxy_port, "finish", date=end_time
                )
                last_time = float(end_time)
            proxy_stats = json.loads(
                await _control_get("127.0.0.1", proxy_port, "stats")
            )
            origin_stats = json.loads(
                await _control_get(origin.host, origin.port, "stats")
            )
            report = _assemble_report(
                proxy_stats,
                origin_stats,
                protocol_name=protocol_name,
                mode_value=mode.value,
                duration=last_time - float(start_time),
                wire_bytes=int(proxy_stats["wire_bytes"]),  # type: ignore[call-overload]
                stale_hits=stale_hits,
                stale_age_sum=stale_age_sum,
                stale_events=stale_events,
            )
            obs_trace.span(
                "live.replay",
                obs_clock.monotonic() - replay_started,
                requests=len(request_list),
                wire_bytes=report.wire_bytes,
            )
            return report
        finally:
            proc.kill()
            await proc.wait()
    finally:
        await origin.close()


__all__ = [
    "LiveReplayReport",
    "check_wire_exact",
    "replay_live",
    "replay_pooled",
    "run_crash_replay",
    "run_replay",
]
