"""The live load driver: replay a synthetic trace over real sockets.

:func:`replay_live` plays a ``(time, object_id)`` request stream — the
same stream :func:`repro.core.simulator.simulate` consumes — against a
running :class:`~repro.live.origin.LiveOrigin` /
:class:`~repro.live.proxy.LiveProxy` pair, one real HTTP/1.0 exchange
per request, and assembles the run into the very same
:class:`~repro.core.results.SimulationResult` shape the simulator
returns.  That shared shape is what lets the differential leg
(:mod:`repro.live.differential`) diff a live run against a simulated
one field-for-field.

Two pieces of the result cannot be observed inside the proxy and are
assembled here:

* **server-side load** (``server_gets``, ``server_ims_queries``) comes
  from the origin's own counters, fetched over its stats control
  endpoint — so the invariant ``server_gets == full_retrievals +
  prefetches`` is a genuine two-machine cross-check, not a tautology;
* **staleness ground truth** (``stale_hits``, ``stale_age_sum``): the
  proxy cannot know it served a stale copy — that is the *point* of
  weak consistency.  The driver audits every ``X-Cache: HIT`` response
  against the origin's modification schedule, exactly as the
  simulator's omniscient hit branch does.

:func:`check_wire_exact` gates a replay up front: every timestamp the
run touches must be a whole second, because simulation time travels in
RFC 1123 ``Date`` headers.  A fractional modification time would be
floored in transit and the live accounting would silently diverge from
the simulator — better to refuse loudly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.core.costs import DEFAULT_COSTS, MessageCosts
from repro.core.metrics import BandwidthLedger, ConsistencyCounters
from repro.core.protocols.base import ConsistencyProtocol
from repro.core.results import SimulationResult
from repro.core.server import OriginServer
from repro.core.simulator import SimulatorMode
from repro.fastpath.contract import COUNTER_FIELDS
from repro.http.messages import Request
from repro.live.origin import LiveOrigin
from repro.live.proxy import LiveProxy
from repro.live.wire import (
    CONTROL_PREFIX,
    DATE,
    X_CACHE,
    LiveReplayError,
    LiveWireError,
    ensure_integral,
    exchange,
)
from repro.obs import clock as obs_clock
from repro.obs import trace as obs_trace


@dataclass
class LiveReplayReport:
    """Everything one live replay produced.

    Attributes:
        result: the run in the simulator's result shape — counters,
            bandwidth ledger (abstract :class:`MessageCosts` bytes),
            duration.  This is the side diffed against ``simulate()``.
        wire_bytes: actual bytes moved on sockets across the whole
            replay (warmup and control exchanges included) — the
            live-only measurement, deliberately *not* part of the diff.
        origin_gets: full retrievals the origin counted.
        origin_ims_queries: If-Modified-Since exchanges the origin
            counted.
    """

    result: SimulationResult
    wire_bytes: int = 0
    origin_gets: int = 0
    origin_ims_queries: int = 0


def check_wire_exact(
    server: OriginServer,
    requests: Sequence[tuple[float, str]],
    *,
    start_time: float = 0.0,
    end_time: Optional[float] = None,
) -> None:
    """Refuse inputs that cannot survive wire transport bit-for-bit.

    Raises:
        LiveReplayError: on any fractional timestamp (request times,
            object creation times, modification times, expiry
            lifetimes, the run window edges) or an unordered request
            stream.
    """
    ensure_integral(start_time, "start_time")
    if end_time is not None:
        ensure_integral(end_time, "end_time")
    previous = float(start_time)
    for t, object_id in requests:
        ensure_integral(t, f"request time for {object_id!r}")
        if t < previous:
            raise LiveReplayError(
                f"request stream is not time-ordered: {t!r} after "
                f"{previous!r} ({object_id!r})"
            )
        previous = float(t)
    for object_id, history in server.histories().items():
        ensure_integral(history.obj.created, f"{object_id!r} creation time")
        if history.obj.expires_after is not None:
            ensure_integral(
                history.obj.expires_after, f"{object_id!r} expires_after"
            )
        for mod_time in history.schedule.times:
            ensure_integral(mod_time, f"{object_id!r} modification time")


async def _control_get(
    host: str,
    port: int,
    endpoint: str,
    *,
    date: Optional[float] = None,
) -> str:
    request = Request("GET", CONTROL_PREFIX + endpoint)
    if date is not None:
        request.headers.set_date(DATE, date)
    response, body, _ = await exchange(host, port, request)
    if response.status != 200:
        raise LiveWireError(
            f"control endpoint {endpoint!r} returned {response.status}: "
            f"{body.strip()!r}"
        )
    return body


async def replay_live(
    origin: LiveOrigin,
    proxy: LiveProxy,
    requests: Iterable[tuple[float, str]],
    *,
    start_time: float = 0.0,
    end_time: Optional[float] = None,
) -> LiveReplayReport:
    """Replay a request stream through a live origin/proxy pair.

    Both servers must already be started.  The proxy is warmed first
    (pre-loaded with valid copies of the population, uncounted), then
    each request becomes one real client exchange carrying its
    simulation time in a ``Date`` header.  After the stream — and the
    trailing invalidation flush when ``end_time`` is given — the
    counters are assembled from the proxy's and origin's stats
    endpoints plus the driver's own staleness audit.

    Returns:
        A :class:`LiveReplayReport`; ``report.result.counters`` has
        passed :meth:`ConsistencyCounters.check_invariants`.

    Raises:
        LiveReplayError: when the inputs cannot be wire-exact.
        LiveWireError: on protocol errors from either live server.
    """
    replay_started = obs_clock.monotonic()
    request_list = list(requests)
    check_wire_exact(
        origin.server, request_list, start_time=start_time, end_time=end_time
    )
    await proxy.warm(start_time)

    stale_hits = 0
    stale_age_sum = 0.0
    last_time = float(start_time)
    for t, object_id in request_list:
        request = Request("GET", object_id)
        request.headers.set_date(DATE, t)
        response, _, _ = await exchange(proxy.host, proxy.port, request)
        if response.status != 200:
            raise LiveWireError(
                f"proxy returned {response.status} for {object_id!r} "
                f"at t={t!r}"
            )
        last_time = float(t)
        if response.headers.get(X_CACHE) != "HIT":
            continue
        # Staleness audit: only unvalidated cache hits can be stale,
        # and only the driver (holding the origin's ground truth) can
        # tell — mirroring the simulator's omniscient hit branch.
        last_modified = response.headers.last_modified
        if last_modified is None:
            raise LiveWireError(
                f"cache hit for {object_id!r} lacks Last-Modified"
            )
        schedule = origin.server.schedule(object_id)
        if last_modified < schedule.last_modified_at(t):
            stale_hits += 1
            became_stale = schedule.next_change_after(last_modified)
            if became_stale is not None:
                stale_age_sum += t - became_stale

    if end_time is not None:
        await _control_get(proxy.host, proxy.port, "finish", date=end_time)
        last_time = float(end_time)

    proxy_stats = json.loads(
        await _control_get(proxy.host, proxy.port, "stats")
    )
    origin_stats = json.loads(
        await _control_get(origin.host, origin.port, "stats")
    )

    counters = ConsistencyCounters(
        **{
            name: int(proxy_stats["counters"][name])
            for name in COUNTER_FIELDS
            if name != "stale_age_sum"
        },
        stale_age_sum=float(proxy_stats["counters"]["stale_age_sum"]),
    )
    counters.stale_hits = stale_hits
    counters.stale_age_sum = stale_age_sum
    counters.server_gets = int(origin_stats["gets"])
    counters.server_ims_queries = int(origin_stats["ims_queries"])

    bandwidth = BandwidthLedger(
        control_bytes={
            k: int(v)
            for k, v in proxy_stats["bandwidth"]["control_bytes"].items()
        },
        body_bytes={
            k: int(v)
            for k, v in proxy_stats["bandwidth"]["body_bytes"].items()
        },
        exchanges={
            k: int(v)
            for k, v in proxy_stats["bandwidth"]["exchanges"].items()
        },
    )

    result = SimulationResult(
        protocol_name=proxy.protocol.name,
        mode=proxy.mode.value,
        counters=counters,
        bandwidth=bandwidth,
        duration=last_time - float(start_time),
    )
    result.counters.check_invariants()
    report = LiveReplayReport(
        result=result,
        wire_bytes=proxy.wire_bytes,
        origin_gets=int(origin_stats["gets"]),
        origin_ims_queries=int(origin_stats["ims_queries"]),
    )
    obs_trace.span(
        "live.replay",
        obs_clock.monotonic() - replay_started,
        requests=len(request_list),
        wire_bytes=report.wire_bytes,
    )
    return report


async def run_replay(
    server: OriginServer,
    protocol: ConsistencyProtocol,
    requests: Iterable[tuple[float, str]],
    mode: SimulatorMode = SimulatorMode.OPTIMIZED,
    *,
    costs: MessageCosts = DEFAULT_COSTS,
    start_time: float = 0.0,
    end_time: Optional[float] = None,
    charge_per_modification: bool = True,
) -> LiveReplayReport:
    """Boot an ephemeral origin/proxy pair on loopback, replay, tear down.

    The one-call form of :func:`replay_live` for callers that do not
    need to keep the servers running — the CLI's ``repro replay`` and
    the differential leg both go through here, so they exercise the
    identical code path.
    """
    origin = LiveOrigin(server)
    await origin.start()
    try:
        proxy = LiveProxy(
            origin.host,
            origin.port,
            protocol,
            mode,
            costs=costs,
            charge_per_modification=charge_per_modification,
        )
        await proxy.start()
        try:
            return await replay_live(
                origin,
                proxy,
                requests,
                start_time=start_time,
                end_time=end_time,
            )
        finally:
            await proxy.close()
    finally:
        await origin.close()


__all__ = [
    "LiveReplayReport",
    "check_wire_exact",
    "replay_live",
    "run_replay",
]
