"""Run one :class:`~repro.live.proxy.LiveProxy` as its own process.

``python -m repro.live.standalone --origin-host H --origin-port P
--protocol NAME --parameter X --journal PATH [--port N] [--mode M]
[--concurrent] [--charge-on-transition]``

This is the crash-restart harness's victim process
(:func:`repro.live.driver.run_crash_replay`): the proxy must be
SIGKILL-able without taking the driver down, and must be able to come
back with nothing but its journal — so it lives behind a process
boundary with exactly three contracts:

* it prints ``PORT <n>`` on stdout once it is listening (the parent
  reads the ephemeral port from that line);
* an empty/missing journal means a cold start — the parent warms it
  through the ``warm`` control endpoint; a non-empty journal means a
  post-crash restart — the proxy re-warms itself from disk via
  :meth:`~repro.live.proxy.LiveProxy.restore` before accepting traffic;
* it serves until killed; there is no graceful shutdown to get wrong.

The protocol is rebuilt by name through
:func:`repro.core.protocols.factory.build_protocol` — the same registry
the CLI uses — and adaptive protocol state is *not* lost across the
kill: it rides in the journal's transaction records.
"""

from __future__ import annotations

import argparse
import asyncio

from repro.core.protocols.factory import PROTOCOLS, build_protocol
from repro.core.simulator import SimulatorMode
from repro.live.journal import Journal
from repro.live.proxy import LiveProxy


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.live.standalone",
        description="Run a journaled live proxy as a standalone process.",
    )
    parser.add_argument("--origin-host", required=True)
    parser.add_argument("--origin-port", type=int, required=True)
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="listen port (0 picks an ephemeral one; a restart reuses "
        "the crashed instance's port)",
    )
    parser.add_argument("--protocol", required=True, choices=list(PROTOCOLS))
    parser.add_argument("--parameter", type=float, default=0.0)
    parser.add_argument(
        "--mode",
        choices=[m.value for m in SimulatorMode],
        default=SimulatorMode.OPTIMIZED.value,
    )
    parser.add_argument("--journal", required=True)
    parser.add_argument(
        "--concurrent",
        action="store_true",
        help="serve distinct objects under per-object locks",
    )
    parser.add_argument(
        "--charge-on-transition",
        action="store_true",
        help="charge invalidations only on valid->invalid transitions "
        "(charge_per_modification=False)",
    )
    return parser


async def _serve(args: argparse.Namespace) -> None:
    proxy = LiveProxy(
        args.origin_host,
        args.origin_port,
        build_protocol(args.protocol, args.parameter),
        SimulatorMode(args.mode),
        charge_per_modification=not args.charge_on_transition,
        concurrent=args.concurrent,
        journal=Journal(args.journal),
    )
    # A non-empty journal is a crash restart: re-warm from disk before
    # the socket opens, so the first retried request already sees the
    # committed state.
    await proxy.restore()
    await proxy.start(port=args.port)
    print(f"PORT {proxy.port}", flush=True)
    await asyncio.Event().wait()


def main(argv: list[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    try:
        asyncio.run(_serve(args))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
