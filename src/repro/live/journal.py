"""The live proxy's crash journal: append-only JSONL, SIGKILL-safe.

One record per line, written with ``os.open``/``os.write`` under
``O_APPEND`` so every committed transaction reaches the kernel before
the proxy replies to its client (commit-before-reply).  There is no
user-space buffering to lose: a proxy SIGKILLed at any instant leaves a
journal whose complete lines are exactly its committed transactions,
plus at most one torn trailing line, which :meth:`Journal.load`
discards.

Record kinds (the proxy writes them, :meth:`LiveProxy.restore
<repro.live.proxy.LiveProxy.restore>` replays them):

* ``config`` — protocol name, mode, charging policy; a restore sanity
  check against the restarted proxy's own configuration.
* ``warm`` — the warmed cache (every entry's full field set) and the
  warm-time clock state.
* ``txn`` — one committed transaction's deltas: the serialized reply
  (keyed by ``X-Repro-Seq`` for replay-on-retry), non-zero counter and
  ledger deltas, emitted events, post-state of every touched cache
  entry, invalidation cursors, clocks, per-object upstream sequence
  counters, and the protocol's :meth:`state_snapshot
  <repro.core.protocols.base.ConsistencyProtocol.state_snapshot>`.

The format is deltas-plus-touched-entries rather than full snapshots so
journal size is proportional to work done, and restore is a single
forward replay.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Union


class Journal:
    """An append-only JSONL journal at a filesystem path.

    Writing uses ``os.open``/``os.write`` (no stream buffering), so a
    record is durable against process death the moment :meth:`append`
    returns.  The file is created on first append.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def append(self, record: dict[str, object]) -> None:
        """Durably append one record as a JSON line."""
        data = json.dumps(record, sort_keys=True).encode("utf-8") + b"\n"
        fd = os.open(
            str(self.path),
            os.O_WRONLY | os.O_CREAT | os.O_APPEND,
            0o644,
        )
        try:
            # os.write may write fewer bytes than asked (signal, quota);
            # a partial line that later appends extend would tear the
            # journal mid-file and load() would silently stop there, so
            # loop until every byte is down.
            while data:
                written = os.write(fd, data)
                data = data[written:]
        finally:
            os.close(fd)

    def load(self) -> list[dict[str, object]]:
        """All complete records, in append order.

        A torn trailing line — the signature of a mid-write SIGKILL —
        is discarded, as is anything after a line that fails to parse
        (a torn write can only be last, so nothing valid follows it).
        Returns an empty list when the file does not exist.
        """
        try:
            raw = self.path.read_bytes()
        except FileNotFoundError:
            return []
        records: list[dict[str, object]] = []
        parts = raw.split(b"\n")
        # The final element is "" after a complete line, or the torn
        # tail of an interrupted append; either way it is not a record.
        for part in parts[:-1]:
            try:
                record = json.loads(part.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                break
            if not isinstance(record, dict):
                break
            records.append(record)
        return records


__all__ = ["Journal"]
