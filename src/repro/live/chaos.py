"""Deterministic socket-level fault injection for the live mode.

A :class:`ChaosRelay` is a transparent TCP relay placed on either side
of the live proxy (driver↔proxy and proxy↔origin).  It forwards the
HTTP/1.0 exchanges byte-for-byte, except when a seeded draw tells it to
misbehave.  The fault taxonomy is the socket-level counterpart of
:mod:`repro.faults` (which models *invalidation-message* loss inside
the simulator — see ``docs/FAULTS.md``):

* **loss** — the request is dropped before ever reaching the server;
  the client sees its connection close with no reply.  Retrying is
  always safe: the server never saw the request.
* **reset** — the request is forwarded and the server's reply is read
  in full, then thrown away and the connection closed.  The server
  *committed* the exchange; only :data:`~repro.live.wire.SEQ_HEADER`
  idempotency keeps a retry from double-counting.
* **truncate** — the reply is cut mid-stream, which the wire layer
  surfaces as :class:`~repro.live.wire.LiveTruncationError` (or a
  mid-head close).  Like a reset, the server already committed.
* **dribble** — the reply is delivered *intact* but one byte at a
  time, exercising reader segmentation; not a fault the client can
  even observe, so it never costs a retry.
* **delay** — a real ``asyncio.sleep`` before the reply.  Simulation
  time travels in ``Date`` headers, so wall-clock delay has no
  accounting effect; it exists to shake out ordering assumptions.

Every decision is a pure function of ``(seed, relay label, exchange
key, attempt number, stage)`` through :func:`repro.faults.rng.uniform01`
— two runs of the same plan inject byte-identical faults.  The exchange
key is the request's ``X-Repro-Seq`` when present (so a *retry* of a
faulted exchange is a new attempt of the *same* key), else the request
start line.  A per-key consecutive-fault cap (``cap``) forces a clean
pass-through after ``cap`` injections, which is the relay's progress
guarantee: a retry loop sized :attr:`WireFaultPlan.max_attempts` always
gets one fault-free exchange.
"""

from __future__ import annotations

import asyncio
import zlib
from dataclasses import dataclass
from typing import Optional

from repro.faults.rng import uniform01
from repro.live.wire import (
    SEQ_HEADER,
    TRACE_HEADER,
    LiveWireError,
    _body_length,
    _read_head,
    cancel_handler_tasks,
    pin_handler_task,
)
from repro.obs import clock as obs_clock
from repro.obs import registry as obs_metrics
from repro.obs import trace as obs_trace

def _crc(text: str) -> int:
    return zlib.crc32(text.encode("utf-8"))


@dataclass(frozen=True)
class WireFaultPlan:
    """A seeded description of socket-level misbehaviour.

    Attributes:
        loss_rate: probability a request is dropped before forwarding.
        reset_rate: probability a reply is discarded and the connection
            closed after the server processed the request.
        truncate_rate: probability a reply is cut at half its bytes.
        dribble_rate: probability a reply is delivered byte-at-a-time
            (intact — a segmentation stressor, not a fault).
        delay: real seconds slept before each reply (wall clock only;
            simulation time is header-borne).
        seed: keys every draw (see :mod:`repro.faults.rng`).
        max_consecutive: per-exchange-key cap on *consecutive* injected
            faults; after this many in a row, the relay passes the
            exchange through clean (and a clean pass resets the run).

    Raises:
        ValueError: for out-of-range rates, a negative delay, or a
            non-positive cap.
    """

    loss_rate: float = 0.0
    reset_rate: float = 0.0
    truncate_rate: float = 0.0
    dribble_rate: float = 0.0
    delay: float = 0.0
    seed: int = 0
    max_consecutive: int = 3

    def __post_init__(self) -> None:
        for field_name in ("loss_rate", "reset_rate", "truncate_rate",
                           "dribble_rate"):
            rate = getattr(self, field_name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{field_name} must be in [0, 1]: {rate}")
        if self.delay < 0.0:
            raise ValueError(f"delay must be non-negative: {self.delay}")
        if self.max_consecutive < 1:
            raise ValueError(
                f"max_consecutive must be >= 1: {self.max_consecutive}"
            )

    @property
    def is_null(self) -> bool:
        """True when the relay would forward everything untouched."""
        return (
            self.loss_rate == 0.0
            and self.reset_rate == 0.0
            and self.truncate_rate == 0.0
            and self.dribble_rate == 0.0
            and self.delay == 0.0
        )

    @property
    def max_attempts(self) -> int:
        """Retry budget that always suffices under this plan.

        ``max_consecutive`` faults per key, one guaranteed clean pass,
        plus one spare for a connection raced into a close.
        """
        return self.max_consecutive + 2

    def draw(self, label: str, key: str, attempt: int, stage: str) -> float:
        """The deterministic uniform draw for one decision."""
        return uniform01(
            self.seed, _crc(label), _crc(key), attempt, _crc(stage)
        )


def parse_chaos(text: str) -> WireFaultPlan:
    """Parse a ``--chaos`` string into a :class:`WireFaultPlan`.

    The grammar mirrors ``--faults`` (:mod:`repro.faults.spec`): one
    comma-separated list of ``field=value`` pairs, any order::

        --chaos loss=0.2,reset=0.1,truncate=0.2,dribble=0.5,seed=3
        --chaos delay=0.005,cap=4

    ``loss``/``reset``/``truncate``/``dribble`` are rates in ``[0, 1]``;
    ``delay`` is real seconds (a float — wall clock, not simulation
    time); ``seed`` and ``cap`` are integers.

    Raises:
        ValueError: for unknown fields or malformed values (message
            names the offending field).
    """
    values: dict[str, float] = {}
    ints: dict[str, int] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        name, sep, raw = part.partition("=")
        name = name.strip()
        if not sep:
            raise ValueError(f"bad --chaos field (expected name=value): {part!r}")
        try:
            if name in ("loss", "reset", "truncate", "dribble", "delay"):
                values[name] = float(raw)
            elif name in ("seed", "cap"):
                ints[name] = int(raw)
            else:
                raise ValueError(
                    f"unknown --chaos field {name!r} (expected loss, reset, "
                    "truncate, dribble, delay, seed, cap)"
                )
        except ValueError as exc:
            if "unknown --chaos field" in str(exc):
                raise
            raise ValueError(
                f"bad value for --chaos field {name!r}: {raw!r}"
            ) from None
    return WireFaultPlan(
        loss_rate=values.get("loss", 0.0),
        reset_rate=values.get("reset", 0.0),
        truncate_rate=values.get("truncate", 0.0),
        dribble_rate=values.get("dribble", 0.0),
        delay=values.get("delay", 0.0),
        seed=ints.get("seed", 0),
        max_consecutive=ints.get("cap", 3),
    )


@dataclass(frozen=True)
class _Decision:
    """The resolved fate of one relayed exchange."""

    loss: bool = False
    reset: bool = False
    truncate: bool = False
    dribble: bool = False


class ChaosRelay:
    """A deterministic fault-injecting TCP relay for one hop.

    Args:
        target_host: where forwarded exchanges go (the real server).
        target_port: the real server's port.
        plan: the seeded fault plan.
        label: names this hop in the draw key (``"client"`` for
            driver↔proxy, ``"upstream"`` for proxy↔origin), so the two
            relays of one replay inject independent faults from one
            seed.
        trace: a :class:`~repro.obs.trace.TraceSink` recording one
            ``live.trace.chaos`` mark per injected fault (loss, reset,
            truncate), keyed on the relayed request's ``X-Repro-Trace``
            id when it carries one.  Relays are harness-side, so the
            driver's sink is the natural home.
    """

    def __init__(
        self,
        target_host: str,
        target_port: int,
        plan: WireFaultPlan,
        label: str,
        *,
        trace: Optional[obs_trace.TraceSink] = None,
    ) -> None:
        self.target_host = target_host
        self.target_port = target_port
        self.plan = plan
        self.label = label
        self._trace = trace
        #: Total faults injected (loss + reset + truncate) over the
        #: relay's lifetime; dribble and delay are not faults.
        self.injected = 0
        self._attempts: dict[str, int] = {}
        self._faulted: dict[str, int] = {}
        self._state_lock = asyncio.Lock()
        self._handlers: set[asyncio.Task[None]] = set()
        self._listener: Optional[asyncio.AbstractServer] = None
        self._host = ""
        self._port = 0

    # -- lifecycle -----------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind and start relaying; ``port=0`` picks an ephemeral port."""
        self._listener = await asyncio.start_server(
            self._handle, host=host, port=port
        )
        sockname = self._listener.sockets[0].getsockname()
        self._host, self._port = sockname[0], int(sockname[1])

    async def close(self) -> None:
        """Stop relaying and release the socket."""
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()
            self._listener = None
        await cancel_handler_tasks(self._handlers)

    @property
    def host(self) -> str:
        """Bound address (after :meth:`start`)."""
        return self._host

    @property
    def port(self) -> int:
        """Bound port (after :meth:`start`)."""
        return self._port

    # -- decisions -----------------------------------------------------------

    async def _decide(
        self, key: str, tid: Optional[str] = None
    ) -> _Decision:
        """Resolve (and record) the fate of one exchange for ``key``."""
        plan = self.plan
        async with self._state_lock:
            attempt = self._attempts.get(key, 0)
            self._attempts[key] = attempt + 1
            dribble = plan.draw(self.label, key, attempt, "dribble") < (
                plan.dribble_rate
            )
            if self._faulted.get(key, 0) >= plan.max_consecutive:
                # Progress guarantee: this key has burned its fault
                # budget — pass it through clean (dribble is harmless).
                # The clean pass resets the *consecutive* count, so a
                # key reused by later exchanges (e.g. the shared start
                # line of seq-less control pulls) stays fault-eligible.
                self._faulted[key] = 0
                return _Decision(dribble=dribble)
            if plan.draw(self.label, key, attempt, "loss") < plan.loss_rate:
                decision, fault = _Decision(loss=True), "loss"
            elif plan.draw(self.label, key, attempt, "reset") < plan.reset_rate:
                decision, fault = _Decision(reset=True), "reset"
            elif plan.draw(self.label, key, attempt, "truncate") < (
                plan.truncate_rate
            ):
                decision = _Decision(truncate=True, dribble=dribble)
                fault = "truncate"
            else:
                self._faulted[key] = 0
                return _Decision(dribble=dribble)
            self._faulted[key] = self._faulted.get(key, 0) + 1
            self.injected += 1
            obs_metrics.emit("live.chaos.injected")
            if self._trace is not None:
                self._trace.mark(
                    "live.trace.chaos",
                    tid,
                    obs_clock.monotonic(),
                    hop=self.label,
                    fault=fault,
                )
            return decision

    # -- relaying ------------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Relay one client connection (possibly many exchanges)."""
        pin_handler_task(self._handlers)
        upstream_reader: Optional[asyncio.StreamReader] = None
        upstream_writer: Optional[asyncio.StreamWriter] = None
        try:
            while True:
                try:
                    head = await _read_head(reader)
                except LiveWireError:
                    # Clean close between exchanges (the normal end of a
                    # keep-alive conversation) or a client that died
                    # mid-request; either way the relay just hangs up.
                    break
                key = _exchange_key(head)
                decision = await self._decide(key, _head_value(head, TRACE_HEADER))
                if decision.loss:
                    # Dropped before the server ever hears of it: the
                    # cleanest fault — a retry needs no idempotency.
                    break
                if upstream_writer is None:
                    upstream_reader, upstream_writer = (
                        await asyncio.open_connection(
                            self.target_host, self.target_port
                        )
                    )
                assert upstream_reader is not None
                upstream_writer.write(head.encode("latin-1"))
                await upstream_writer.drain()
                try:
                    reply_head = await _read_head(upstream_reader)
                    length = _body_length(reply_head)
                    reply_body = (
                        await upstream_reader.readexactly(length)
                        if length
                        else b""
                    )
                except (LiveWireError, asyncio.IncompleteReadError):
                    # The server side died mid-reply (e.g. it was
                    # SIGKILLed); surface a close to the client, which
                    # retries.
                    break
                payload = reply_head.encode("latin-1") + reply_body
                if self.plan.delay > 0.0:
                    await asyncio.sleep(self.plan.delay)
                if decision.reset:
                    # The server committed; the reply evaporates.
                    break
                if decision.truncate:
                    writer.write(payload[: len(payload) // 2])
                    await writer.drain()
                    break
                if decision.dribble:
                    for i in range(len(payload)):
                        writer.write(payload[i : i + 1])
                        await writer.drain()
                else:
                    writer.write(payload)
                    await writer.drain()
        except asyncio.CancelledError:
            raise
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()
            if upstream_writer is not None:
                upstream_writer.close()


def _head_value(head: str, header: str) -> Optional[str]:
    """The value of ``header`` in a serialized request head, if any."""
    needle = header.lower() + ":"
    for line in head.split("\r\n")[1:]:
        if line.lower().startswith(needle):
            return line.partition(":")[2].strip()
    return None


def _exchange_key(head: str) -> str:
    """The draw key for a relayed request head.

    The ``X-Repro-Seq`` value when present — a retried exchange must be
    a new *attempt* of the same key, or the consecutive-fault cap could
    never guarantee progress — else the start line.
    """
    seq = _head_value(head, SEQ_HEADER)
    return seq if seq is not None else head.split("\r\n", 1)[0]


__all__ = ["ChaosRelay", "WireFaultPlan", "parse_chaos"]
