"""The oracle's fourth leg: live replay vs simulation, diffed exactly.

The repo already cross-checks the simulator three ways (executable
spec, replayed event log, batched fast path — see
:mod:`repro.verify.oracle` and :mod:`repro.fastpath.contract`).  This
module adds the leg the others cannot provide: the same trace is driven
through **real sockets** — asyncio origin, asyncio caching proxy, one
HTTP/1.0 exchange per request — and the live run's counters and
bandwidth ledger must equal :func:`repro.core.simulator.simulate`
**exactly**, all thirteen counters and all fifteen ledger cells.

Exactness is the whole point.  The live side re-derives every
consistency decision from wire artifacts (RFC 1123 ``Date`` headers,
``Last-Modified``, ``Expires`` re-stamps on 304s, an invalidation feed
pulled in windows), so a single floored pre-epoch date, a mis-scoped
weekday, or an off-by-one feed window shows up as a counter divergence
here — which is precisely how the :mod:`repro.http.datefmt` bugs this
PR fixes were caught.

No event-log leg: the live proxy does not journal events (the wire *is*
its event log), so ``events_checked`` stays 0 in the report.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Iterable, Optional

from repro.core.costs import DEFAULT_COSTS, MessageCosts
from repro.core.metrics import _CATEGORIES
from repro.core.protocols.base import ConsistencyProtocol
from repro.core.results import SimulationResult
from repro.core.server import OriginServer
from repro.core.simulator import SimulatorMode, simulate
from repro.fastpath.contract import COUNTER_FIELDS
from repro.live.driver import run_replay
from repro.verify.oracle import ConsistencyViolation, OracleReport

#: Per-category ledger tables compared cell-for-cell.
_LEDGER_TABLES = ("control_bytes", "body_bytes", "exchanges")


def diff_live_vs_sim(
    live: SimulationResult, sim: SimulationResult
) -> list[str]:
    """Every cell where a live replay and a simulation disagree.

    Compares all :data:`COUNTER_FIELDS` counters and every
    ``(table, category)`` bandwidth-ledger cell.  An empty list means
    the live run matched the simulator bit-for-bit.
    """
    lines: list[str] = []
    for name in COUNTER_FIELDS:
        live_value = getattr(live.counters, name)
        sim_value = getattr(sim.counters, name)
        if live_value != sim_value:
            lines.append(
                f"counter {name}: live={live_value!r} sim={sim_value!r}"
            )
    for table in _LEDGER_TABLES:
        live_table = getattr(live.bandwidth, table)
        sim_table = getattr(sim.bandwidth, table)
        for category in _CATEGORIES:
            if live_table[category] != sim_table[category]:
                lines.append(
                    f"ledger {table}[{category}]: "
                    f"live={live_table[category]!r} "
                    f"sim={sim_table[category]!r}"
                )
    if live.duration != sim.duration:
        lines.append(
            f"duration: live={live.duration!r} sim={sim.duration!r}"
        )
    return lines


def live_vs_sim(
    server: OriginServer,
    protocol_factory: Callable[[], ConsistencyProtocol],
    requests: Iterable[tuple[float, str]],
    mode: SimulatorMode = SimulatorMode.OPTIMIZED,
    *,
    costs: MessageCosts = DEFAULT_COSTS,
    start_time: float = 0.0,
    end_time: Optional[float] = None,
    charge_per_modification: bool = True,
) -> tuple[SimulationResult, SimulationResult, OracleReport]:
    """Replay a trace live, simulate the same trace, and diff the two.

    ``protocol_factory`` must build a *fresh* protocol instance per
    call — adaptive protocols (Alex) carry per-entry state, so the live
    and simulated legs each need their own.

    Boots an ephemeral origin/proxy pair on loopback, runs
    :func:`~repro.live.driver.replay_live`, tears the servers down,
    then runs :func:`~repro.core.simulator.simulate` with the identical
    configuration (``preload=True`` matches the live warmup).

    Returns:
        ``(live_result, sim_result, report)``.

    Raises:
        ConsistencyViolation: when any counter or ledger cell differs;
            ``exc.report.divergences`` lists every mismatch.
    """
    request_list = list(requests)
    live_report = asyncio.run(
        run_replay(
            server,
            protocol_factory(),
            request_list,
            mode,
            costs=costs,
            start_time=float(start_time),
            end_time=end_time,
            charge_per_modification=charge_per_modification,
        )
    )
    sim_result = simulate(
        server,
        protocol_factory(),
        request_list,
        mode,
        costs=costs,
        preload=True,
        start_time=float(start_time),
        end_time=end_time,
        charge_per_modification=charge_per_modification,
    )
    live_result = live_report.result
    report = OracleReport(
        protocol_name=live_result.protocol_name,
        mode=live_result.mode,
        events_checked=0,
        counters_checked=len(COUNTER_FIELDS),
        ledger_cells_checked=len(_LEDGER_TABLES) * len(_CATEGORIES),
        divergences=diff_live_vs_sim(live_result, sim_result),
    )
    if not report.ok:
        raise ConsistencyViolation(report)
    return live_result, sim_result, report


__all__ = ["diff_live_vs_sim", "live_vs_sim"]
