"""The oracle's fourth leg: live replay vs simulation, diffed exactly.

The repo already cross-checks the simulator three ways (executable
spec, replayed event log, batched fast path — see
:mod:`repro.verify.oracle` and :mod:`repro.fastpath.contract`).  This
module adds the leg the others cannot provide: the same trace is driven
through **real sockets** — asyncio origin, asyncio caching proxy, real
HTTP/1.0 exchanges — and the live run's counters and bandwidth ledger
must equal :func:`repro.core.simulator.simulate` **exactly**, all
thirteen counters and all fifteen ledger cells.

Exactness is the whole point.  The live side re-derives every
consistency decision from wire artifacts (RFC 1123 ``Date`` headers,
``Last-Modified``, ``Expires`` re-stamps on 304s, an invalidation feed
pulled in windows), so a single floored pre-epoch date, a mis-scoped
weekday, or an off-by-one feed window shows up as a counter divergence
here — which is precisely how the :mod:`repro.http.datefmt` bugs were
caught.

Hardened topologies keep the same oracle and add an event leg.  A
concurrent replay (``connections > 1``, keep-alive) interleaves
*distinct* objects' requests, so live events are not committed in the
simulator's global order — but per-object order is preserved by
construction, and per-object timelines fully determine per-object
state, so correctness is "same multiset of ``(kind, time, object)``
events", which :func:`diff_event_multisets` checks per object.  The
totals check is *not* relaxed: all thirteen counters and fifteen cells
still match exactly, because every counter is an order-independent sum
over per-object events.  One wrinkle: the live proxy emits ``hit`` for
every cache hit (it cannot know staleness — that is the point of weak
consistency), so the driver's ground-truth audit relabels stale hits
before the diff (:func:`_relabel_stale`).

:func:`crash_vs_sim` is the harshest leg: the proxy runs out of
process, is SIGKILLed mid-replay, restarts from its journal — and the
final numbers must *still* equal a crash-free simulation, which is what
commit-before-reply journaling plus sequence-id exactly-once semantics
guarantee.
"""

from __future__ import annotations

import asyncio
from collections import Counter
from pathlib import Path
from typing import Callable, Iterable, Optional, Union

from repro.core.costs import DEFAULT_COSTS, MessageCosts
from repro.core.metrics import _CATEGORIES
from repro.core.protocols.base import ConsistencyProtocol
from repro.core.protocols.factory import build_protocol
from repro.core.results import SimulationResult
from repro.core.server import OriginServer
from repro.core.simulator import Simulation, SimulatorMode, simulate
from repro.fastpath.contract import COUNTER_FIELDS
from repro.faults.plan import FaultPlan
from repro.live.chaos import WireFaultPlan
from repro.live.driver import (
    LiveReplayReport,
    run_crash_replay,
    run_replay,
)
from repro.verify.oracle import ConsistencyViolation, OracleReport

#: Per-category ledger tables compared cell-for-cell.
_LEDGER_TABLES = ("control_bytes", "body_bytes", "exchanges")


def diff_live_vs_sim(
    live: SimulationResult, sim: SimulationResult
) -> list[str]:
    """Every cell where a live replay and a simulation disagree.

    Compares all :data:`COUNTER_FIELDS` counters and every
    ``(table, category)`` bandwidth-ledger cell.  An empty list means
    the live run matched the simulator bit-for-bit.
    """
    lines: list[str] = []
    for name in COUNTER_FIELDS:
        live_value = getattr(live.counters, name)
        sim_value = getattr(sim.counters, name)
        if live_value != sim_value:
            lines.append(
                f"counter {name}: live={live_value!r} sim={sim_value!r}"
            )
    for table in _LEDGER_TABLES:
        live_table = getattr(live.bandwidth, table)
        sim_table = getattr(sim.bandwidth, table)
        for category in _CATEGORIES:
            if live_table[category] != sim_table[category]:
                lines.append(
                    f"ledger {table}[{category}]: "
                    f"live={live_table[category]!r} "
                    f"sim={sim_table[category]!r}"
                )
    if live.duration != sim.duration:
        lines.append(
            f"duration: live={live.duration!r} sim={sim.duration!r}"
        )
    return lines


def _relabel_stale(
    events: Iterable[tuple[str, float, str]],
    stale_events: Iterable[tuple[float, str]],
) -> list[tuple[str, float, str]]:
    """Rewrite live ``hit`` events the driver's audit proved stale.

    The proxy emits ``hit`` for every cache hit; the simulator's
    omniscient hit branch emits ``stale_hit`` when ground truth says
    the copy was stale.  The driver's audit (which holds the same
    ground truth) bridges the gap: each audited-stale ``(time, object)``
    pair converts one matching ``hit`` into ``stale_hit``.
    """
    budget = Counter(stale_events)
    out: list[tuple[str, float, str]] = []
    for kind, t, object_id in events:
        if kind == "hit" and budget[(t, object_id)] > 0:
            budget[(t, object_id)] -= 1
            out.append(("stale_hit", t, object_id))
        else:
            out.append((kind, t, object_id))
    return out


def diff_event_multisets(
    live_events: Iterable[tuple[str, float, str]],
    sim_events: Iterable[tuple[str, float, str]],
) -> list[str]:
    """Per-object event-multiset divergences between live and sim.

    Ordering-tolerant by design: a concurrent replay commits distinct
    objects' events in whatever order their locks won, but each event
    still carries its simulation time and object — so equality of the
    per-object multisets is exactly "every object saw the same
    timeline".  Cross-object commit order is deliberately *not*
    compared; the exact-totals counter check is what pins the sums.
    """
    live_count = Counter(live_events)
    sim_count = Counter(sim_events)
    lines: list[str] = []
    for key in sorted(
        set(live_count) | set(sim_count), key=lambda k: (k[2], k[1], k[0])
    ):
        if live_count[key] != sim_count[key]:
            kind, t, object_id = key
            lines.append(
                f"event ({kind!r}, {t!r}, {object_id!r}): "
                f"live x{live_count[key]} sim x{sim_count[key]}"
            )
    return lines


def _simulate_with_events(
    server: OriginServer,
    protocol: ConsistencyProtocol,
    requests: list[tuple[float, str]],
    mode: SimulatorMode,
    *,
    costs: MessageCosts,
    start_time: float,
    end_time: Optional[float],
    charge_per_modification: bool,
    faults: Optional[FaultPlan],
) -> tuple[SimulationResult, list[tuple[str, float, str]]]:
    """Run the reference simulation, capturing its event stream."""
    events: list[tuple[str, float, str]] = []

    def observer(kind: str, t: float, object_id: str) -> None:
        events.append((kind, t, object_id))

    sim = Simulation(
        server,
        protocol,
        mode,
        costs=costs,
        preload=True,
        start_time=start_time,
        observer=observer,
        charge_per_modification=charge_per_modification,
        faults=faults,
    )
    return sim.run(requests, end_time=end_time), events


def _oracle_check(
    live_report: LiveReplayReport,
    sim_result: SimulationResult,
    sim_events: list[tuple[str, float, str]],
    *,
    compare_events: bool,
) -> tuple[SimulationResult, SimulationResult, OracleReport]:
    live_result = live_report.result
    divergences = diff_live_vs_sim(live_result, sim_result)
    events_checked = 0
    if compare_events:
        live_events = _relabel_stale(
            live_report.events, live_report.stale_events
        )
        divergences.extend(diff_event_multisets(live_events, sim_events))
        events_checked = len(live_events)
    report = OracleReport(
        protocol_name=live_result.protocol_name,
        mode=live_result.mode,
        events_checked=events_checked,
        counters_checked=len(COUNTER_FIELDS),
        ledger_cells_checked=len(_LEDGER_TABLES) * len(_CATEGORIES),
        divergences=divergences,
    )
    if not report.ok:
        raise ConsistencyViolation(report)
    return live_result, sim_result, report


def live_vs_sim(
    server: OriginServer,
    protocol_factory: Callable[[], ConsistencyProtocol],
    requests: Iterable[tuple[float, str]],
    mode: SimulatorMode = SimulatorMode.OPTIMIZED,
    *,
    costs: MessageCosts = DEFAULT_COSTS,
    start_time: float = 0.0,
    end_time: Optional[float] = None,
    charge_per_modification: bool = True,
    connections: int = 1,
    keepalive: bool = False,
    chaos: Optional[WireFaultPlan] = None,
    faults: Optional[FaultPlan] = None,
    journal_path: Optional[Union[str, Path]] = None,
    trace_path: Optional[Union[str, Path]] = None,
) -> tuple[SimulationResult, SimulationResult, OracleReport]:
    """Replay a trace live, simulate the same trace, and diff the two.

    ``protocol_factory`` must build a *fresh* protocol instance per
    call — adaptive protocols (Alex) carry per-entry state, so the live
    and simulated legs each need their own.

    Boots an ephemeral origin/proxy pair on loopback (plus chaos relays
    when ``chaos`` is given), runs the matching driver via
    :func:`~repro.live.driver.run_replay`, tears the servers down, then
    runs the reference simulator with the identical configuration
    (``preload=True`` matches the live warmup, ``faults`` passes
    through to ``simulate(faults=plan)``).  In hardened topologies the
    committed live event log is additionally compared per-object
    against the simulator's observer stream (stale hits relabelled from
    the driver's audit); the plain serial replay keeps
    ``events_checked == 0``, exactly the historical contract.
    ``trace_path`` enables per-role causal tracing on the live leg
    (see :func:`~repro.live.driver.run_replay`); the simulated leg is
    never traced here.

    Returns:
        ``(live_result, sim_result, report)``.

    Raises:
        ConsistencyViolation: when any counter, ledger cell, or
            (hardened) per-object event multiset differs;
            ``exc.report.divergences`` lists every mismatch.
    """
    request_list = list(requests)
    live_report = asyncio.run(
        run_replay(
            server,
            protocol_factory(),
            request_list,
            mode,
            costs=costs,
            start_time=float(start_time),
            end_time=end_time,
            charge_per_modification=charge_per_modification,
            connections=connections,
            keepalive=keepalive,
            chaos=chaos,
            faults=faults,
            journal_path=journal_path,
            trace_path=trace_path,
        )
    )
    compare_events = bool(live_report.events) or (
        connections > 1
        or keepalive
        or (chaos is not None and not chaos.is_null)
        or faults is not None
        or journal_path is not None
    )
    sim_result, sim_events = _simulate_with_events(
        server,
        protocol_factory(),
        request_list,
        mode,
        costs=costs,
        start_time=float(start_time),
        end_time=end_time,
        charge_per_modification=charge_per_modification,
        faults=faults,
    )
    return _oracle_check(
        live_report,
        sim_result,
        sim_events,
        compare_events=compare_events,
    )


def crash_vs_sim(
    server: OriginServer,
    protocol_name: str,
    parameter: float,
    requests: Iterable[tuple[float, str]],
    mode: SimulatorMode = SimulatorMode.OPTIMIZED,
    *,
    start_time: float = 0.0,
    end_time: Optional[float] = None,
    charge_per_modification: bool = True,
    journal_path: Union[str, Path],
    crash_after: int,
    connections: int = 2,
    keepalive: bool = True,
) -> tuple[SimulationResult, SimulationResult, OracleReport]:
    """SIGKILL-and-restart replay vs a *crash-free* simulation.

    The proxy runs out of process with a commit-before-reply journal
    (:func:`~repro.live.driver.run_crash_replay`), is killed after
    ``crash_after`` completed requests, restarts from the journal, and
    the surviving run must reconcile **exactly** — counters, ledger
    cells, and per-object event multisets — with a simulation that
    never crashed.  Anything the crash lost that the journal did not
    capture shows up here as a divergence.

    The protocol is named (the child process rebuilds it), so costs are
    fixed at :data:`DEFAULT_COSTS`.

    Raises:
        ConsistencyViolation: on any divergence.
    """
    request_list = list(requests)
    live_report = asyncio.run(
        run_crash_replay(
            server,
            protocol_name,
            parameter,
            request_list,
            mode,
            start_time=float(start_time),
            end_time=end_time,
            charge_per_modification=charge_per_modification,
            journal_path=journal_path,
            crash_after=crash_after,
            connections=connections,
            keepalive=keepalive,
        )
    )
    sim_result, sim_events = _simulate_with_events(
        server,
        build_protocol(protocol_name, parameter),
        request_list,
        mode,
        costs=DEFAULT_COSTS,
        start_time=float(start_time),
        end_time=end_time,
        charge_per_modification=charge_per_modification,
        faults=None,
    )
    return _oracle_check(
        live_report, sim_result, sim_events, compare_events=True
    )


__all__ = [
    "crash_vs_sim",
    "diff_event_multisets",
    "diff_live_vs_sim",
    "live_vs_sim",
]
