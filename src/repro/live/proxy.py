"""The live caching proxy.

One :class:`LiveProxy` stands between live clients and a
:class:`~repro.live.origin.LiveOrigin`, holding an *unmodified*
:class:`repro.core.cache.Cache` and delegating every freshness decision
to an unmodified :class:`~repro.core.protocols.base.ConsistencyProtocol`
instance.  Its request handling mirrors
:meth:`repro.core.simulator.Simulation.step` transition-for-transition —
the equivalence the live-vs-sim differential leg
(:mod:`repro.live.differential`) enforces:

* before serving a request at time *t*, the proxy pulls the origin's
  invalidation window ``(last_sync, t]`` over the wire and applies it
  exactly like the simulator's ``_deliver_invalidations_until`` (the
  ``charge_per_modification`` policy and the eager-prefetch variant
  included);
* a fresh entry is served from cache (``X-Cache: HIT``); an expired
  entry is revalidated with a real If-Modified-Since exchange in
  optimized mode (``X-Cache: REVALIDATED`` on 304) or refetched
  unconditionally in base mode; misses transfer the body
  (``X-Cache: MISS``);
* a 304 re-stamps ``server_expires`` from the reply's ``Expires``
  header and re-runs the protocol's ``on_stored`` hook, exactly as the
  simulator does;
* responses carrying ``Pragma: no-cache`` (dynamic objects) are
  forwarded but never stored.

Accounting is double-entry: the :class:`~repro.core.metrics
.BandwidthLedger` charges the paper's abstract
:class:`~repro.core.costs.MessageCosts` (so live and simulated ledgers
are comparable cell-for-cell), while :attr:`LiveProxy.wire_bytes`
separately tallies the *actual* bytes moved on sockets — the real
HTTP/1.0 framing overhead the 43-byte model abstracts away.

A single asyncio lock serializes request processing: the simulator is a
sequential machine, and equivalence to it is the contract.  Simulation
time comes exclusively from ``Date`` headers — the proxy never reads a
wall clock (RPR001-scoped), which is what makes live replays
reproducible.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional

from repro.core.cache import Cache, CacheEntry
from repro.core.costs import DEFAULT_COSTS, MessageCosts
from repro.core.metrics import (
    FULL_RETRIEVAL,
    INVALIDATION,
    PREFETCH,
    VALIDATION_200,
    VALIDATION_304,
    BandwidthLedger,
    ConsistencyCounters,
)
from repro.core.protocols.base import ConsistencyProtocol
from repro.core.simulator import SimulatorMode
from repro.fastpath.contract import COUNTER_FIELDS
from repro.http.datefmt import HTTPDateError, parse_http_date
from repro.http.headers import CONTENT_LENGTH, CONTENT_TYPE, EXPIRES
from repro.http.messages import Request, Response, make_ok
from repro.live.wire import (
    CONTROL_PREFIX,
    DATE,
    PRAGMA,
    WARMUP_HEADER,
    X_CACHE,
    LiveWireError,
    exchange,
    read_request,
    write_message,
)
from repro.obs import clock as obs_clock
from repro.obs import registry as obs_metrics
from repro.obs import trace as obs_trace


def _error(status: int, message: str) -> tuple[Response, str]:
    body = message + "\n"
    response = Response(status, body_size=len(body))
    response.headers.set(CONTENT_LENGTH, str(len(body)))
    response.headers.set(CONTENT_TYPE, "text")
    return response, body


class LiveProxy:
    """An asyncio HTTP/1.0 caching proxy driven by a consistency protocol.

    Args:
        origin_host: address of the live origin.
        origin_port: port of the live origin.
        protocol: a *fresh* protocol instance (adaptive protocols carry
            state), used unmodified for every freshness decision.
        mode: base (unconditional refetch on expiry) or optimized
            (If-Modified-Since revalidation), as in the simulator.
        costs: the abstract byte cost model charged to the ledger.
        charge_per_modification: the Section 4.1 invalidation charging
            policy, identical in meaning to the simulator's knob.
    """

    def __init__(
        self,
        origin_host: str,
        origin_port: int,
        protocol: ConsistencyProtocol,
        mode: SimulatorMode = SimulatorMode.OPTIMIZED,
        *,
        costs: MessageCosts = DEFAULT_COSTS,
        charge_per_modification: bool = True,
    ) -> None:
        self.origin_host = origin_host
        self.origin_port = origin_port
        self.protocol = protocol
        self.mode = mode
        self.costs = costs
        self.charge_per_modification = bool(charge_per_modification)
        self.cache = Cache()
        self.counters = ConsistencyCounters()
        self.bandwidth = BandwidthLedger()
        #: Actual bytes moved on sockets (client side + origin side) —
        #: the live-only measurement the 43-byte model abstracts away.
        self.wire_bytes = 0
        self._now = 0.0
        self._last_sync = 0.0
        self._lock = asyncio.Lock()
        self._listener: Optional[asyncio.AbstractServer] = None
        self._host = ""
        self._port = 0

    # -- lifecycle -----------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind and start serving; ``port=0`` picks an ephemeral port."""
        self._listener = await asyncio.start_server(
            self._handle, host=host, port=port
        )
        sockname = self._listener.sockets[0].getsockname()
        self._host, self._port = sockname[0], int(sockname[1])

    async def close(self) -> None:
        """Stop serving and release the socket."""
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()
            self._listener = None

    @property
    def host(self) -> str:
        """Bound address (after :meth:`start`)."""
        return self._host

    @property
    def port(self) -> int:
        """Bound port (after :meth:`start`)."""
        return self._port

    # -- warmup --------------------------------------------------------------

    async def warm(self, start_time: float) -> int:
        """Pre-load a valid copy of every cacheable origin object.

        The live counterpart of the paper's "cache is pre-loaded with
        valid copies of all the files" configuration
        (:meth:`repro.core.cache.Cache.preload_from`): real warmup-tagged
        GETs fetch each population object at ``start_time``; neither
        side counts or charges them.

        Returns:
            The number of entries loaded.
        """
        warm_started = obs_clock.monotonic()
        listing = Request("GET", CONTROL_PREFIX + "population")
        _, body, nbytes = await exchange(
            self.origin_host, self.origin_port, listing
        )
        self.wire_bytes += nbytes
        loaded = 0
        for object_id in body.splitlines():
            request = Request("GET", object_id)
            request.headers.set_date(DATE, start_time)
            request.headers.set(WARMUP_HEADER, "1")
            response, _, nbytes = await exchange(
                self.origin_host, self.origin_port, request
            )
            self.wire_bytes += nbytes
            if response.status != 200:
                raise LiveWireError(
                    f"warmup fetch of {object_id!r} returned "
                    f"{response.status}"
                )
            self._store_from_response(object_id, response, start_time)
            loaded += 1
        self._now = float(start_time)
        self._last_sync = float(start_time)
        obs_trace.span(
            "live.warmup",
            obs_clock.monotonic() - warm_started,
            entries=loaded,
        )
        return loaded

    # -- origin exchanges ----------------------------------------------------

    async def _origin_get(
        self, object_id: str, t: float, since: Optional[float] = None
    ) -> Response:
        """One real GET (conditional when ``since`` is given) upstream."""
        request = Request("GET", object_id)
        request.headers.set_date(DATE, t)
        if since is not None:
            request.headers.set_date("If-Modified-Since", since)
        response, _, nbytes = await exchange(
            self.origin_host, self.origin_port, request
        )
        self.wire_bytes += nbytes
        if response.status not in (200, 304):
            raise LiveWireError(
                f"origin returned {response.status} for {object_id!r}"
            )
        return response

    def _store_from_response(
        self, object_id: str, response: Response, t: float
    ) -> CacheEntry:
        """Build and store a cache entry from a live 200 response.

        The mirror of the simulator's ``_store``; every consistency-
        relevant field comes off the wire (``Last-Modified``,
        ``Content-Length``, ``Content-Type``, ``Expires``).  Live
        entries carry no origin version number — staleness ground truth
        is the driver's job, via ``Last-Modified`` (which identifies the
        version one-for-one).
        """
        last_modified = response.headers.last_modified
        if last_modified is None:
            raise LiveWireError(
                f"200 response for {object_id!r} lacks Last-Modified"
            )
        entry = CacheEntry(
            object_id=object_id,
            version=0,
            size=response.body_size,
            file_type=response.headers.get(CONTENT_TYPE) or "other",
            fetched_at=t,
            validated_at=t,
            last_modified=last_modified,
            valid=True,
            server_expires=response.headers.expires,
        )
        self.cache.store(entry)
        self.protocol.on_stored(entry, t)
        return entry

    # -- invalidation sync ---------------------------------------------------

    async def _sync_invalidations(self, until: float) -> None:
        """Pull and apply the origin's invalidation window
        ``(last_sync, until]``.

        The live transport of the simulator's
        ``_deliver_invalidations_until``: each feed line is applied in
        order through :meth:`Cache.invalidate`, charged under the
        ``charge_per_modification`` policy, and — for the eager
        protocol variant — followed by a real prefetch GET at the
        modification time.
        """
        if not self.protocol.wants_invalidations:
            return
        if until <= self._last_sync:
            return
        request = Request("GET", CONTROL_PREFIX + "invalidations")
        request.headers.set_date("If-Modified-Since", self._last_sync)
        request.headers.set_date(DATE, until)
        response, body, nbytes = await exchange(
            self.origin_host, self.origin_port, request
        )
        self.wire_bytes += nbytes
        if response.status != 200:
            raise LiveWireError(
                f"invalidation feed returned {response.status}"
            )
        self._last_sync = float(until)
        control, notice_body = self.costs.invalidation_notice()
        eager = getattr(self.protocol, "eager", False)
        per_modification = self.charge_per_modification
        for line in body.splitlines():
            date_text, sep, object_id = line.partition("\t")
            if not sep:
                raise LiveWireError(f"bad invalidation feed line: {line!r}")
            try:
                mod_time = parse_http_date(date_text)
            except HTTPDateError as exc:
                raise LiveWireError(
                    f"bad invalidation feed date: {date_text!r}"
                ) from exc
            if self.cache.peek(object_id) is None:
                continue
            went_invalid = self.cache.invalidate(object_id)
            if went_invalid or per_modification:
                self.counters.invalidations_received += 1
                self.counters.server_invalidations_sent += 1
                self.bandwidth.charge(INVALIDATION, control, notice_body)
            if eager:
                # Pre-optimization invalidation: push the new copy with
                # the notice, off any client's critical path.
                prefetched = await self._origin_get(object_id, mod_time)
                p_control, p_body = self.costs.full_retrieval(
                    prefetched.body_size
                )
                self.bandwidth.charge(PREFETCH, p_control, p_body)
                self.counters.prefetches += 1
                self._store_from_response(object_id, prefetched, mod_time)

    # -- request handling ----------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request, received = await read_request(reader)
            except LiveWireError as exc:
                response, body = _error(400, str(exc))
                sent = await write_message(writer, response.serialize(body))
                self.wire_bytes += sent
                return
            async with self._lock:
                try:
                    response, body = await self._respond(request)
                except (LiveWireError, HTTPDateError) as exc:
                    response, body = _error(500, str(exc))
            sent = await write_message(writer, response.serialize(body))
            self.wire_bytes += received + sent
            obs_metrics.observe("live.wire_bytes", float(received + sent))
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()

    async def _respond(self, request: Request) -> tuple[Response, str]:
        if request.method != "GET":
            return _error(400, f"unsupported method {request.method!r}")
        if request.path.startswith(CONTROL_PREFIX):
            return await self._control(request)
        return await self._object(request)

    # -- control endpoints ---------------------------------------------------

    async def _control(self, request: Request) -> tuple[Response, str]:
        endpoint = request.path[len(CONTROL_PREFIX):]
        if endpoint == "stats":
            return self._stats()
        if endpoint == "finish":
            t = request.headers.get_date(DATE)
            if t is None:
                return _error(400, "finish needs a Date header (end time)")
            if t < self._now:
                return _error(
                    400,
                    f"finish time {t!r} precedes current time {self._now!r}",
                )
            # The simulator's finish(end_time): trailing invalidations
            # are still delivered (and charged) after the last request.
            await self._sync_invalidations(t)
            self._now = float(t)
            body = "ok\n"
            response = Response(200, body_size=len(body))
            response.headers.set(CONTENT_LENGTH, str(len(body)))
            return response, body
        return _error(404, f"unknown control endpoint {endpoint!r}")

    def _stats(self) -> tuple[Response, str]:
        payload = {
            "counters": {
                name: getattr(self.counters, name)
                for name in COUNTER_FIELDS
            },
            "bandwidth": {
                "control_bytes": dict(self.bandwidth.control_bytes),
                "body_bytes": dict(self.bandwidth.body_bytes),
                "exchanges": dict(self.bandwidth.exchanges),
            },
            "wire_bytes": self.wire_bytes,
            "protocol": self.protocol.name,
            "mode": self.mode.value,
        }
        body = json.dumps(payload, sort_keys=True) + "\n"
        response = Response(200, body_size=len(body))
        response.headers.set(CONTENT_LENGTH, str(len(body)))
        response.headers.set(CONTENT_TYPE, "json")
        return response, body

    # -- the consistency state machine (mirror of Simulation.step) ----------

    async def _object(self, request: Request) -> tuple[Response, str]:
        t = request.headers.get_date(DATE)
        if t is None:
            # Ad-hoc clients (curl) may omit Date; serve at the current
            # simulation time so exploration doesn't need header tooling.
            t = self._now
        if t < self._now:
            return _error(
                400,
                f"request at {t!r} precedes current time {self._now!r}; "
                "live request streams must be time-ordered",
            )
        self._now = float(t)
        await self._sync_invalidations(t)
        self.counters.requests += 1
        obs_metrics.emit("live.requests")
        object_id = request.path

        entry = self.cache.lookup(object_id)
        if entry is None:
            return await self._fetch_and_store(object_id, t)

        if self.protocol.is_fresh(entry, t):
            self.counters.hits += 1
            return self._serve_from_cache(entry, t, "HIT")

        if self.mode is SimulatorMode.BASE:
            # Unconditional refetch, even when nothing changed.
            return await self._fetch_and_store(object_id, t)

        # Optimized mode: conditional retrieval.
        self.counters.validations += 1
        response = await self._origin_get(
            object_id, t, since=entry.last_modified
        )
        if response.status == 304:
            control, body_cost = self.costs.validation_not_modified()
            self.bandwidth.charge(VALIDATION_304, control, body_cost)
            self.counters.validations_not_modified += 1
            entry.validated_at = t
            entry.valid = True
            # The 304 re-stamps the Expires header, exactly as the
            # simulator does with NotModified.expires.
            entry.server_expires = response.headers.expires
            self.protocol.on_stored(entry, t)
            self.protocol.on_validation_result(entry, t, was_modified=False)
            self.counters.hits += 1
            return self._serve_from_cache(entry, t, "REVALIDATED")
        control, body_cost = self.costs.validation_modified(
            response.body_size
        )
        self.bandwidth.charge(VALIDATION_200, control, body_cost)
        self.counters.misses += 1
        stored = self._store_from_response(object_id, response, t)
        self.protocol.on_validation_result(stored, t, was_modified=True)
        return self._forward(response, "MISS")

    async def _fetch_and_store(
        self, object_id: str, t: float
    ) -> tuple[Response, str]:
        """A full retrieval: the mirror of the simulator's
        ``_full_fetch`` (+ store, unless the origin says no-cache)."""
        response = await self._origin_get(object_id, t)
        control, body_cost = self.costs.full_retrieval(response.body_size)
        self.bandwidth.charge(FULL_RETRIEVAL, control, body_cost)
        self.counters.full_retrievals += 1
        self.counters.misses += 1
        if PRAGMA not in response.headers:
            self._store_from_response(object_id, response, t)
        return self._forward(response, "MISS")

    def _serve_from_cache(
        self, entry: CacheEntry, t: float, verdict: str
    ) -> tuple[Response, str]:
        response = make_ok(entry.size, last_modified=entry.last_modified)
        response.headers.set_date(DATE, t)
        response.headers.set(CONTENT_TYPE, entry.file_type)
        if entry.server_expires is not None:
            response.headers.set_date(EXPIRES, entry.server_expires)
        response.headers.set(X_CACHE, verdict)
        return response, "x" * entry.size

    def _forward(
        self, response: Response, verdict: str
    ) -> tuple[Response, str]:
        response.headers.set(X_CACHE, verdict)
        return response, "x" * response.body_size
