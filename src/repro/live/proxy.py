"""The live caching proxy.

One :class:`LiveProxy` stands between live clients and a
:class:`~repro.live.origin.LiveOrigin`, holding an *unmodified*
:class:`repro.core.cache.Cache` and delegating every freshness decision
to an unmodified :class:`~repro.core.protocols.base.ConsistencyProtocol`
instance.  Its request handling mirrors
:meth:`repro.core.simulator.Simulation.step` transition-for-transition —
the equivalence the live-vs-sim differential leg
(:mod:`repro.live.differential`) enforces:

* before serving a request at time *t*, the proxy pulls the origin's
  invalidation window over the wire and applies it exactly like the
  simulator's ``_deliver_invalidations_until`` (the
  ``charge_per_modification`` policy and the eager-prefetch variant
  included) — or, under an installed :class:`~repro.faults.FaultPlan`,
  replays the compiled fault schedule exactly like the simulator's
  ``_process_fault_actions``;
* a fresh entry is served from cache (``X-Cache: HIT``); an expired
  entry is revalidated with a real If-Modified-Since exchange in
  optimized mode (``X-Cache: REVALIDATED`` on 304) or refetched
  unconditionally in base mode; misses transfer the body
  (``X-Cache: MISS``);
* a 304 re-stamps ``server_expires`` from the reply's ``Expires``
  header and re-runs the protocol's ``on_stored`` hook, exactly as the
  simulator does;
* responses carrying ``Pragma: no-cache`` (dynamic objects) are
  forwarded but never stored.

Accounting is double-entry: the :class:`~repro.core.metrics
.BandwidthLedger` charges the paper's abstract
:class:`~repro.core.costs.MessageCosts` (so live and simulated ledgers
are comparable cell-for-cell), while :attr:`LiveProxy.wire_bytes`
separately tallies the *actual* bytes moved on sockets — the real
HTTP/1.0 framing overhead the 43-byte model abstracts away.

Locking discipline (RPR007-checked).  Historically one asyncio lock
serialized everything; now lock granularity follows state scope:

* each object's request stream is processed under a **per-object
  lock** (``concurrent=True``), so distinct objects interleave freely —
  per-object event timelines fully determine per-object cache state,
  and the run's counters are order-independent sums over them, which
  is why the differential oracle still pins the totals exactly;
* protocols whose freshness decisions couple objects
  (``cross_object_state`` — the self-tuning per-file-type thresholds)
  fall back to one global lock, as do control exchanges;
* every mutation of *shared* aggregates (counters, ledger, event log,
  wire tally, the journal) happens inside a short critical section
  under ``_state_lock`` — :meth:`_commit`, called once per request
  with the transaction's accumulated deltas.

Transactions make chaos survivable: a request's effects are staged in
a :class:`_Txn`, committed (journaled, then applied) *before* the reply
is sent, and the serialized reply is remembered under the request's
``X-Repro-Seq`` so an at-least-once transport (socket faults, proxy
restarts) gets exactly-once accounting — a retry of a committed
exchange replays the stored reply without touching state.  Upstream
exchanges are made idempotent the same way: deterministic per-object
sequence ids, journaled with the transaction, so even a proxy
SIGKILLed mid-request retries its origin fetches under the same ids
and the origin's counters cannot double-count.

Simulation time comes exclusively from ``Date`` headers — the proxy
never reads a wall clock (RPR001-scoped), which is what makes live
replays reproducible.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional

from repro.core.cache import Cache, CacheEntry
from repro.core.costs import DEFAULT_COSTS, MessageCosts
from repro.core.metrics import (
    FULL_RETRIEVAL,
    INVALIDATION,
    PREFETCH,
    VALIDATION_200,
    VALIDATION_304,
    BandwidthLedger,
    ConsistencyCounters,
)
from repro.core.protocols.base import ConsistencyProtocol
from repro.core.simulator import SimulatorMode
from repro.fastpath.contract import COUNTER_FIELDS
from repro.faults.plan import (
    ATTEMPT_LOST,
    ATTEMPT_SENT,
    CRASH,
    DROP,
    FaultAction,
    FaultPlan,
)
from repro.http.datefmt import HTTPDateError, parse_http_date
from repro.http.headers import CONTENT_LENGTH, CONTENT_TYPE, EXPIRES
from repro.http.messages import Request, Response, make_ok
from repro.live.journal import Journal
from repro.live.wire import (
    CONTROL_PREFIX,
    DATE,
    OBJECT_HEADER,
    PRAGMA,
    SEQ_HEADER,
    TRACE_HEADER,
    WARMUP_HEADER,
    X_CACHE,
    LiveConnectionClosed,
    LiveReplayError,
    LiveWireError,
    cancel_handler_tasks,
    ensure_integral,
    exchange,
    pin_handler_task,
    read_request,
    wants_keepalive,
    write_message,
)
from repro.obs import clock as obs_clock
from repro.obs import registry as obs_metrics
from repro.obs import trace as obs_trace

#: Cache-entry fields serialized into journal records, in constructor
#: order (``CacheEntry(**dict)`` must round-trip).
_ENTRY_FIELDS = (
    "object_id",
    "version",
    "size",
    "file_type",
    "fetched_at",
    "validated_at",
    "last_modified",
    "valid",
    "expires_at",
    "server_expires",
)


def _error(status: int, message: str) -> tuple[Response, str]:
    body = message + "\n"
    response = Response(status, body_size=len(body))
    response.headers.set(CONTENT_LENGTH, str(len(body)))
    response.headers.set(CONTENT_TYPE, "text")
    return response, body


def _entry_dict(entry: CacheEntry) -> dict[str, object]:
    return {name: getattr(entry, name) for name in _ENTRY_FIELDS}


class _Txn:
    """One request's staged effects, applied atomically at commit.

    Everything a request adds to *shared* state accumulates here while
    the request runs under its object (or global) lock; :meth:`LiveProxy
    ._commit` folds it into the proxy — and the journal — in one short
    ``_state_lock`` critical section.  Cache entries and protocol state
    are mutated in place during processing (they are protected by the
    object lock that serialized this request); the transaction records
    which entries were touched so the journal can persist their
    post-state.
    """

    __slots__ = (
        "seq",
        "counters",
        "bandwidth",
        "events",
        "touched",
        "cleared",
        "cursors",
        "last_sync",
        "obj_now",
        "fault_idx",
        "upstream",
        "trace",
        "upstream_wall",
    )

    def __init__(self, seq: Optional[str] = None) -> None:
        self.seq = seq
        self.counters = ConsistencyCounters()
        self.bandwidth = BandwidthLedger()
        self.events: list[tuple[str, float, str]] = []
        self.touched: set[str] = set()
        self.cleared = False
        self.cursors: dict[str, float] = {}
        self.last_sync: Optional[float] = None
        self.obj_now: Optional[tuple[str, float]] = None
        self.fault_idx: Optional[int] = None
        #: Post-txn upstream sequence counters for objects this request
        #: fetched — staged here (not in the shared dict) so the journal
        #: never records another in-flight transaction's increments.
        self.upstream: dict[str, int] = {}
        #: Propagated X-Repro-Trace id (None when the client sent none).
        self.trace: Optional[str] = None
        #: Wall seconds spent in upstream object fetches, accumulated so
        #: the decision span can be reported net of upstream time.
        self.upstream_wall = 0.0


class LiveProxy:
    """An asyncio HTTP/1.0 caching proxy driven by a consistency protocol.

    Args:
        origin_host: address of the live origin.
        origin_port: port of the live origin.
        protocol: a *fresh* protocol instance (adaptive protocols carry
            state), used unmodified for every freshness decision.
        mode: base (unconditional refetch on expiry) or optimized
            (If-Modified-Since revalidation), as in the simulator.
        costs: the abstract byte cost model charged to the ledger.
        charge_per_modification: the Section 4.1 invalidation charging
            policy, identical in meaning to the simulator's knob.
        concurrent: serve distinct objects under per-object locks
            instead of one global lock.  Requests then only need to be
            time-ordered *per object*; protocols with
            ``cross_object_state`` still serialize globally.
        faults: replay this compiled-at-warm-time invalidation fault
            plan instead of the fault-free feed, mirroring the
            simulator's ``faults=`` knob.  Serial-only (the schedule is
            a global timeline).
        journal: a :class:`~repro.live.journal.Journal` to write
            commit-before-reply transaction records to; see
            :meth:`restore`.
        upstream_attempts: retry budget for origin exchanges (used when
            a chaos relay sits on the upstream hop).  Origin fetches
            carry deterministic per-object sequence ids — so the origin
            can dedup its counting — whenever this exceeds 1 *or* a
            journal is installed (a SIGKILLed proxy re-executes its
            uncommitted requests on restart, which is a retry too).
        trace: a per-role :class:`~repro.obs.trace.TraceSink` recording
            this proxy's causal trace — per-exchange parse / decision /
            upstream / commit / reply spans and recv/retry/restore
            marks, keyed on the client's propagated ``X-Repro-Trace``
            id (``docs/OBSERVABILITY.md``).  ``None`` (the default)
            records nothing and leaves the wire traffic untouched.

    Raises:
        LiveReplayError: for ``faults`` combined with ``concurrent``
            (the schedule is a global timeline), or a fault plan whose
            delay/backoff is not wire-exact (whole seconds).
    """

    def __init__(
        self,
        origin_host: str,
        origin_port: int,
        protocol: ConsistencyProtocol,
        mode: SimulatorMode = SimulatorMode.OPTIMIZED,
        *,
        costs: MessageCosts = DEFAULT_COSTS,
        charge_per_modification: bool = True,
        concurrent: bool = False,
        faults: Optional[FaultPlan] = None,
        journal: Optional[Journal] = None,
        upstream_attempts: int = 1,
        trace: Optional[obs_trace.TraceSink] = None,
    ) -> None:
        self.origin_host = origin_host
        self.origin_port = origin_port
        self.protocol = protocol
        self.mode = mode
        self.costs = costs
        self.charge_per_modification = bool(charge_per_modification)
        self.concurrent = bool(concurrent)
        self.faults = faults
        self.upstream_attempts = max(1, int(upstream_attempts))
        if faults is not None:
            if self.concurrent:
                raise LiveReplayError(
                    "a fault plan is a global timeline; faulted live "
                    "replays run with concurrent=False"
                )
            ensure_integral(faults.delay, "fault-plan delay")
            if faults.retries > 0:
                ensure_integral(faults.backoff, "fault-plan backoff")
        self.cache = Cache()
        self.counters = ConsistencyCounters()
        self.bandwidth = BandwidthLedger()
        #: Actual bytes moved on sockets (client side + origin side) —
        #: the live-only measurement the 43-byte model abstracts away.
        self.wire_bytes = 0
        #: Transport-level connection failures observed while serving.
        self.connection_errors = 0
        #: Committed events, in commit order (hardened modes only) —
        #: the live counterpart of the simulator's observer stream.
        self.events: list[tuple[str, float, str]] = []
        self._now = 0.0
        self._last_sync = 0.0
        self._warm_time = 0.0
        #: Per-object invalidation-feed cursors (concurrent sync).
        self._cursors: dict[str, float] = {}
        #: Per-object request clocks (concurrent time-order check).
        self._obj_now: dict[str, float] = {}
        #: Committed serialized replies by X-Repro-Seq (retry replay).
        self._done: dict[str, str] = {}
        #: Next upstream sequence number per object (idempotent fetches).
        self._upstream: dict[str, int] = {}
        self._fault_actions: tuple[FaultAction, ...] = ()
        self._fault_idx = 0
        self._journal = journal
        self._trace = trace
        self._state_lock = asyncio.Lock()
        self._global_lock = asyncio.Lock()
        self._object_locks: dict[str, asyncio.Lock] = {}
        self._handlers: set[asyncio.Task[None]] = set()
        self._listener: Optional[asyncio.AbstractServer] = None
        self._host = ""
        self._port = 0

    @property
    def hardened(self) -> bool:
        """True when any beyond-PR-7 behaviour is active.

        Gates the extended stats payload (events, connection errors)
        so zero-fault single-connection replays stay byte-identical to
        the historical wire traffic.
        """
        return (
            self.concurrent
            or self.faults is not None
            or self._journal is not None
            or self.upstream_attempts > 1
        )

    @property
    def _per_object(self) -> bool:
        """True when requests are ordered/locked/synced per object."""
        return self.concurrent and not self.protocol.cross_object_state

    # -- lifecycle -----------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind and start serving; ``port=0`` picks an ephemeral port."""
        self._listener = await asyncio.start_server(
            self._handle, host=host, port=port, reuse_address=True
        )
        sockname = self._listener.sockets[0].getsockname()
        self._host, self._port = sockname[0], int(sockname[1])

    async def close(self) -> None:
        """Stop serving and release the socket."""
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()
            self._listener = None
        await cancel_handler_tasks(self._handlers)

    @property
    def host(self) -> str:
        """Bound address (after :meth:`start`)."""
        return self._host

    @property
    def port(self) -> int:
        """Bound port (after :meth:`start`)."""
        return self._port

    # -- warmup --------------------------------------------------------------

    async def warm(self, start_time: float) -> int:
        """Pre-load a valid copy of every cacheable origin object.

        The live counterpart of the paper's "cache is pre-loaded with
        valid copies of all the files" configuration
        (:meth:`repro.core.cache.Cache.preload_from`): real warmup-tagged
        GETs fetch each population object at ``start_time``; neither
        side counts or charges them.  With a journal installed, the
        warmed state is written as the journal's base records; with a
        fault plan installed, the origin's full modification feed is
        fetched and compiled into the action schedule exactly as
        ``Simulation.__init__`` does.

        Returns:
            The number of entries loaded.
        """
        warm_started = obs_clock.monotonic()
        listing = Request("GET", CONTROL_PREFIX + "population")
        _, body, _ = await self._origin_raw(listing)
        loaded = 0
        for object_id in body.splitlines():
            request = Request("GET", object_id)
            request.headers.set_date(DATE, start_time)
            request.headers.set(WARMUP_HEADER, "1")
            response, _, _ = await self._origin_raw(request)
            if response.status != 200:
                raise LiveWireError(
                    f"warmup fetch of {object_id!r} returned "
                    f"{response.status}"
                )
            self._store_from_response(object_id, response, start_time, None)
            loaded += 1
        self._now = float(start_time)
        self._last_sync = float(start_time)
        self._warm_time = float(start_time)
        if self.faults is not None:
            await self._compile_faults()
        if self._journal is not None:
            self._journal.append(
                {
                    "kind": "config",
                    "protocol": self.protocol.name,
                    "mode": self.mode.value,
                    "charge_per_modification": self.charge_per_modification,
                    "concurrent": self.concurrent,
                }
            )
            self._journal.append(
                {
                    "kind": "warm",
                    "t": float(start_time),
                    "entries": [
                        _entry_dict(entry)
                        for entry in sorted(
                            self.cache, key=lambda e: e.object_id
                        )
                    ],
                }
            )
        obs_trace.span(
            "live.warmup",
            obs_clock.monotonic() - warm_started,
            entries=loaded,
        )
        return loaded

    async def _compile_faults(self) -> None:
        """Fetch the origin's full feed and compile the fault schedule."""
        assert self.faults is not None
        feed: tuple[tuple[float, str], ...] = ()
        if self.protocol.wants_invalidations:
            request = Request("GET", CONTROL_PREFIX + "feed")
            response, body, _ = await self._origin_raw(request)
            if response.status != 200:
                raise LiveWireError(
                    f"feed endpoint returned {response.status}"
                )
            feed = tuple(
                self._parse_feed_line(line) for line in body.splitlines()
            )
        self._fault_actions = self.faults.compile(
            feed, start_time=self._warm_time
        )

    # -- restore -------------------------------------------------------------

    async def restore(self) -> bool:
        """Rebuild state from the journal after a crash.

        Replays the journal's config/warm/txn records in order: cache
        entries, counters, ledger, events, cursors, clocks, committed
        replies (so retried in-flight requests replay rather than
        re-execute), upstream sequence ids, and the protocol's adaptive
        state.  With a fault plan installed, the schedule is re-fetched
        and re-compiled (compilation is deterministic) and the replay
        position restored.

        Returns:
            True when the journal held records (the proxy is warm);
            False for an empty/missing journal (boot normally and
            :meth:`warm`).

        Raises:
            LiveReplayError: when the journal's config record does not
                match this proxy's configuration.
        """
        if self._journal is None:
            raise LiveReplayError("restore() needs a journal")
        restore_started = obs_clock.monotonic()
        records = self._journal.load()
        if not records:
            return False
        for record in records:
            kind = record.get("kind")
            if kind == "config":
                self._check_config(record)
            elif kind == "warm":
                self._restore_warm(record)
            elif kind == "txn":
                self._apply_record(record)
            else:
                raise LiveReplayError(f"unknown journal record kind {kind!r}")
        if self.faults is not None:
            await self._compile_faults()
        if self._trace is not None:
            self._trace.mark(
                "live.trace.restore",
                None,
                obs_clock.monotonic(),
                records=len(records),
            )
        obs_trace.span(
            "live.restore",
            obs_clock.monotonic() - restore_started,
            records=len(records),
        )
        return True

    def _check_config(self, record: dict[str, object]) -> None:
        mine = {
            "protocol": self.protocol.name,
            "mode": self.mode.value,
            "charge_per_modification": self.charge_per_modification,
            "concurrent": self.concurrent,
        }
        for key, expected in mine.items():
            if record.get(key) != expected:
                raise LiveReplayError(
                    f"journal config mismatch for {key!r}: journal has "
                    f"{record.get(key)!r}, proxy has {expected!r}"
                )

    def _restore_warm(self, record: dict[str, object]) -> None:
        t = float(record["t"])  # type: ignore[arg-type]
        self._now = t
        self._last_sync = t
        self._warm_time = t
        entries = record.get("entries", [])
        assert isinstance(entries, list)
        for fields in entries:
            entry = CacheEntry(**fields)
            self.cache.store(entry)
            self.protocol.on_stored(entry, t)

    def _apply_record(self, record: dict[str, object]) -> None:
        """Replay one committed transaction from the journal."""
        seq = record.get("seq")
        if isinstance(seq, str):
            self._done[seq] = str(record.get("payload", ""))
        counters = record.get("counters", {})
        assert isinstance(counters, dict)
        for name, delta in counters.items():
            setattr(
                self.counters,
                name,
                getattr(self.counters, name) + delta,
            )
        ledger = record.get("ledger", {})
        assert isinstance(ledger, dict)
        for table_name, cells in ledger.items():
            table = getattr(self.bandwidth, table_name)
            for category, delta in cells.items():
                table[category] += delta
        events = record.get("events", [])
        assert isinstance(events, list)
        for kind, t, oid in events:
            self.events.append((str(kind), float(t), str(oid)))
        if record.get("cleared"):
            self.cache.clear()
        entries = record.get("entries", {})
        assert isinstance(entries, dict)
        for object_id, fields in entries.items():
            if fields is None:
                self.cache.drop(object_id)
            else:
                self.cache.store(CacheEntry(**fields))
        cursors = record.get("cursors", {})
        assert isinstance(cursors, dict)
        for object_id, cursor in cursors.items():
            self._cursors[object_id] = float(cursor)
        if "last_sync" in record:
            self._last_sync = float(record["last_sync"])  # type: ignore[arg-type]
        if "now" in record:
            self._now = max(self._now, float(record["now"]))  # type: ignore[arg-type]
        obj_now = record.get("obj_now")
        if isinstance(obj_now, list):
            self._obj_now[str(obj_now[0])] = float(obj_now[1])
        upstream = record.get("upstream", {})
        assert isinstance(upstream, dict)
        for object_id, n in upstream.items():
            self._upstream[object_id] = int(n)
        if "fault_idx" in record:
            self._fault_idx = int(record["fault_idx"])  # type: ignore[arg-type]
        state = record.get("state")
        if isinstance(state, dict):
            self.protocol.state_restore(state)

    # -- origin exchanges ----------------------------------------------------

    async def _origin_raw(
        self, request: Request
    ) -> tuple[Response, str, int]:
        """One upstream exchange, retried under a chaos-sized budget.

        The wire tally is charged per attempt — lost bytes moved on a
        socket too.  Retried requests carry whatever ``X-Repro-Seq``
        the caller stamped, so the origin's counting dedups.
        """
        last: Optional[BaseException] = None
        for attempt in range(self.upstream_attempts):
            if attempt:
                obs_metrics.emit("live.retries")
                if self._trace is not None:
                    self._trace.mark(
                        "live.trace.retry",
                        request.headers.get(TRACE_HEADER),
                        obs_clock.monotonic(),
                        hop="upstream",
                    )
            try:
                response, body, nbytes = await exchange(
                    self.origin_host, self.origin_port, request
                )
            except (LiveWireError, ConnectionError, OSError) as exc:
                last = exc
                continue
            self.wire_bytes += nbytes
            return response, body, nbytes
        raise LiveWireError(
            f"origin exchange for {request.path!r} failed after "
            f"{self.upstream_attempts} attempts: {last}"
        )

    async def _origin_get(
        self,
        object_id: str,
        t: float,
        txn: _Txn,
        since: Optional[float] = None,
    ) -> Response:
        """One real GET (conditional when ``since`` is given) upstream."""
        request = Request("GET", object_id)
        request.headers.set_date(DATE, t)
        if since is not None:
            request.headers.set_date("If-Modified-Since", since)
        if self._journal is not None or self.upstream_attempts > 1:
            # Deterministic idempotency id: the k-th counted fetch of
            # this object.  Staged in the transaction and journaled
            # with it at commit, so a restarted proxy's re-execution of
            # an uncommitted request — and any chaos retry — reuses the
            # same ids and the origin cannot double-count.  Ids are
            # needed whenever a journal is installed, not just when
            # this process retries: a SIGKILL can land after the origin
            # counted a fetch but before the transaction committed, and
            # the restarted proxy then re-executes the request.
            base = self._upstream.get(object_id, 0)
            k = txn.upstream.get(object_id, base)
            txn.upstream[object_id] = k + 1
            request.headers.set(SEQ_HEADER, f"{object_id}@{k}")
        if self._trace is not None and txn.trace is not None:
            # Propagate the client's trace id on the upstream hop so
            # the origin's spans join the same causal timeline.
            request.headers.set(TRACE_HEADER, txn.trace)
            fetch_started = obs_clock.monotonic()
            try:
                response, _, _ = await self._origin_raw(request)
            finally:
                txn.upstream_wall += obs_clock.monotonic() - fetch_started
        else:
            response, _, _ = await self._origin_raw(request)
        if response.status not in (200, 304):
            raise LiveWireError(
                f"origin returned {response.status} for {object_id!r}"
            )
        return response

    def _store_from_response(
        self,
        object_id: str,
        response: Response,
        t: float,
        txn: Optional[_Txn],
    ) -> CacheEntry:
        """Build and store a cache entry from a live 200 response.

        The mirror of the simulator's ``_store``; every consistency-
        relevant field comes off the wire (``Last-Modified``,
        ``Content-Length``, ``Content-Type``, ``Expires``).  Live
        entries carry no origin version number — staleness ground truth
        is the driver's job, via ``Last-Modified`` (which identifies the
        version one-for-one).
        """
        last_modified = response.headers.last_modified
        if last_modified is None:
            raise LiveWireError(
                f"200 response for {object_id!r} lacks Last-Modified"
            )
        entry = CacheEntry(
            object_id=object_id,
            version=0,
            size=response.body_size,
            file_type=response.headers.get(CONTENT_TYPE) or "other",
            fetched_at=t,
            validated_at=t,
            last_modified=last_modified,
            valid=True,
            server_expires=response.headers.expires,
        )
        self.cache.store(entry)
        self.protocol.on_stored(entry, t)
        if txn is not None:
            txn.touched.add(object_id)
        return entry

    # -- invalidation sync ---------------------------------------------------

    @staticmethod
    def _parse_feed_line(line: str) -> tuple[float, str]:
        date_text, sep, object_id = line.partition("\t")
        if not sep:
            raise LiveWireError(f"bad invalidation feed line: {line!r}")
        try:
            mod_time = parse_http_date(date_text)
        except HTTPDateError as exc:
            raise LiveWireError(
                f"bad invalidation feed date: {date_text!r}"
            ) from exc
        return mod_time, object_id

    async def _origin_window(
        self,
        since: float,
        until: float,
        object_id: Optional[str] = None,
    ) -> str:
        """Fetch one ``(since, until]`` invalidation window upstream."""
        request = Request("GET", CONTROL_PREFIX + "invalidations")
        request.headers.set_date("If-Modified-Since", since)
        request.headers.set_date(DATE, until)
        if object_id is not None:
            request.headers.set(OBJECT_HEADER, object_id)
        response, body, _ = await self._origin_raw(request)
        if response.status != 200:
            raise LiveWireError(
                f"invalidation feed returned {response.status}"
            )
        return body

    async def _apply_invalidation(
        self, object_id: str, mod_time: float, txn: _Txn
    ) -> None:
        """Apply one feed line: the body of the simulator's
        ``_deliver_invalidations_until`` loop."""
        if self.cache.peek(object_id) is None:
            return
        went_invalid = self.cache.invalidate(object_id)
        txn.touched.add(object_id)
        if went_invalid or self.charge_per_modification:
            txn.counters.invalidations_received += 1
            txn.counters.server_invalidations_sent += 1
            control, body = self.costs.invalidation_notice()
            txn.bandwidth.charge(INVALIDATION, control, body)
            txn.events.append(("invalidation", mod_time, object_id))
        if getattr(self.protocol, "eager", False):
            # Pre-optimization invalidation: push the new copy with
            # the notice, off any client's critical path.
            prefetched = await self._origin_get(object_id, mod_time, txn)
            p_control, p_body = self.costs.full_retrieval(
                prefetched.body_size
            )
            txn.bandwidth.charge(PREFETCH, p_control, p_body)
            txn.counters.prefetches += 1
            self._store_from_response(object_id, prefetched, mod_time, txn)
            txn.events.append(("prefetch", mod_time, object_id))

    async def _deliver(
        self, until: float, txn: _Txn, object_id: Optional[str]
    ) -> None:
        """Deliver pending invalidations (or fault actions) up to
        ``until`` before serving at that time.

        ``object_id`` scopes the pull under per-object locking; ``None``
        (finish, or global-lock modes) delivers for every object.
        """
        if self.faults is not None:
            # The injection seam, exactly as in the simulator: delivery
            # runs off the compiled schedule (possibly empty) and the
            # fault-free feed path is bypassed entirely.
            await self._apply_fault_actions(until, txn)
            return
        if not self.protocol.wants_invalidations:
            return
        if self._per_object and object_id is not None:
            await self._sync_object(object_id, until, txn)
        elif self._per_object:
            await self._finish_sync_all(until, txn)
        else:
            await self._sync_global(until, txn)

    async def _sync_global(self, until: float, txn: _Txn) -> None:
        """Pull and apply the origin's invalidation window
        ``(last_sync, until]`` — the serial path, byte-identical to the
        historical behaviour."""
        if until <= self._last_sync:
            return
        body = await self._origin_window(self._last_sync, until)
        txn.last_sync = float(until)
        for line in body.splitlines():
            mod_time, object_id = self._parse_feed_line(line)
            await self._apply_invalidation(object_id, mod_time, txn)

    async def _sync_object(
        self, object_id: str, until: float, txn: _Txn
    ) -> None:
        """Pull one object's window ``(cursor, until]`` under its lock.

        Per-object cursors replace the single ``last_sync`` watermark:
        two objects' syncs commute because each window is filtered to
        its own object, and the feed events carry their modification
        times, so the committed event multiset is independent of the
        interleaving.
        """
        cursor = self._cursors.get(object_id, self._warm_time)
        if until <= cursor:
            return
        body = await self._origin_window(cursor, until, object_id=object_id)
        txn.cursors[object_id] = float(until)
        for line in body.splitlines():
            mod_time, oid = self._parse_feed_line(line)
            await self._apply_invalidation(oid, mod_time, txn)

    async def _finish_sync_all(self, until: float, txn: _Txn) -> None:
        """Advance every object's cursor to ``until`` (the finish flush).

        One unfiltered pull from the lowest cursor, applied per line
        only where that object's cursor has not already passed it —
        objects synced at different depths see each event exactly once.
        """
        cursors = {
            entry.object_id: self._cursors.get(
                entry.object_id, self._warm_time
            )
            for entry in self.cache
        }
        low = min(cursors.values(), default=self._warm_time)
        if until > low:
            body = await self._origin_window(low, until)
            for line in body.splitlines():
                mod_time, object_id = self._parse_feed_line(line)
                if mod_time <= cursors.get(object_id, until):
                    continue
                await self._apply_invalidation(object_id, mod_time, txn)
        for object_id, cursor in cursors.items():
            if until > cursor:
                txn.cursors[object_id] = float(until)

    async def _apply_fault_actions(self, until: float, txn: _Txn) -> None:
        """Replay compiled fault actions with timestamps <= ``until``.

        A verbatim mirror of the simulator's ``_process_fault_actions``:
        attempts are charged when they leave the server (lost ones
        included), deliveries count on arrival, drops and crashes only
        emit events — so a faulted live replay and ``simulate(faults=
        plan)`` stay cell-identical.
        """
        assert self.faults is not None
        actions = self._fault_actions
        idx = self._fault_idx
        control, body = self.costs.invalidation_notice()
        eager = getattr(self.protocol, "eager", False)
        per_modification = self.charge_per_modification
        n = len(actions)
        while idx < n and actions[idx].time <= until:
            action = actions[idx]
            idx += 1
            if action.kind == CRASH:
                self.cache.clear()
                txn.cleared = True
                txn.touched.clear()
                txn.events.append(("fault_cache_crash", action.time, ""))
                continue
            entry = self.cache.peek(action.object_id)
            if entry is None:
                continue
            if action.kind == ATTEMPT_SENT or action.kind == ATTEMPT_LOST:
                if entry.valid or per_modification:
                    txn.counters.server_invalidations_sent += 1
                    txn.bandwidth.charge(INVALIDATION, control, body)
                    if action.kind == ATTEMPT_LOST:
                        txn.events.append(
                            (
                                "fault_invalidation_lost",
                                action.time,
                                action.object_id,
                            )
                        )
            elif action.kind == DROP:
                if entry.valid:
                    txn.events.append(
                        (
                            "fault_invalidation_dropped",
                            action.time,
                            action.object_id,
                        )
                    )
            else:  # DELIVER
                went_invalid = self.cache.invalidate(
                    action.object_id, modified_at=action.mod_time
                )
                txn.touched.add(action.object_id)
                if went_invalid or per_modification:
                    txn.counters.invalidations_received += 1
                    if action.attempt > 0:
                        txn.events.append(
                            (
                                "fault_invalidation_recovered",
                                action.time,
                                action.object_id,
                            )
                        )
                    txn.events.append(
                        ("invalidation", action.time, action.object_id)
                    )
                if eager:
                    prefetched = await self._origin_get(
                        action.object_id, action.time, txn
                    )
                    p_control, p_body = self.costs.full_retrieval(
                        prefetched.body_size
                    )
                    txn.bandwidth.charge(PREFETCH, p_control, p_body)
                    txn.counters.prefetches += 1
                    self._store_from_response(
                        action.object_id, prefetched, action.time, txn
                    )
                    txn.events.append(
                        ("prefetch", action.time, action.object_id)
                    )
        self._fault_idx = idx
        txn.fault_idx = idx

    # -- request handling ----------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        pin_handler_task(self._handlers)
        try:
            while True:
                parse_started = obs_clock.monotonic()
                try:
                    request, received = await read_request(reader)
                except LiveConnectionClosed:
                    break
                except LiveWireError as exc:
                    response, body = _error(400, str(exc))
                    sent = await write_message(
                        writer, response.serialize(body)
                    )
                    await self._account_wire(sent)
                    break
                tid = request.headers.get(TRACE_HEADER)
                if self._trace is not None and tid is not None:
                    # Parse wall includes keep-alive idle time between
                    # requests — it measures request arrival-to-parsed,
                    # not CPU (docs/OBSERVABILITY.md).
                    recv_clk = obs_clock.monotonic()
                    self._trace.mark("live.trace.recv", tid, recv_clk)
                    self._trace.span(
                        "live.trace.parse",
                        recv_clk - parse_started,
                        {"trace": tid, "clk": recv_clk},
                    )
                keep = wants_keepalive(request)
                payload = await self._process(request)
                reply_started = obs_clock.monotonic()
                sent = await write_message(writer, payload)
                if self._trace is not None and tid is not None:
                    reply_clk = obs_clock.monotonic()
                    self._trace.span(
                        "live.trace.reply",
                        reply_clk - reply_started,
                        {"trace": tid, "clk": reply_clk},
                    )
                await self._account_wire(received + sent)
                if not keep:
                    break
        except asyncio.CancelledError:
            # Teardown must propagate: suppressing it would leave the
            # listener's close() waiting on this handler forever.
            raise
        except ConnectionError:
            await self._note_connection_error()
        finally:
            writer.close()

    async def _account_wire(self, nbytes: int) -> None:
        async with self._state_lock:
            self.wire_bytes += nbytes
            obs_metrics.observe("live.wire_bytes", float(nbytes))

    async def _note_connection_error(self) -> None:
        """Count a transport failure instead of silently swallowing it."""
        async with self._state_lock:
            self.connection_errors += 1
            obs_metrics.emit("live.connection_errors")

    async def _process(self, request: Request) -> str:
        if request.method != "GET":
            response, body = _error(
                400, f"unsupported method {request.method!r}"
            )
            return response.serialize(body)
        if request.path.startswith(CONTROL_PREFIX):
            return await self._process_control(request)
        return await self._process_object(request)

    async def _process_control(self, request: Request) -> str:
        async with self._global_lock:
            try:
                response, body = await self._control(request)
            except (LiveWireError, HTTPDateError) as exc:
                response, body = _error(500, str(exc))
            return response.serialize(body)

    def _lock_for(self, object_id: str) -> asyncio.Lock:
        """The lock serializing ``object_id``'s requests.

        Per-object in concurrent mode; the one global lock otherwise
        (serial mode, and protocols whose state couples objects).
        """
        if not self._per_object:
            return self._global_lock
        if object_id not in self._object_locks:
            self._object_locks[object_id] = asyncio.Lock()
        return self._object_locks[object_id]

    async def _process_object(self, request: Request) -> str:
        lock = self._lock_for(request.path)
        async with lock:
            seq = request.headers.get(SEQ_HEADER)
            if seq is not None:
                committed = self._done.get(seq)
                if committed is not None:
                    # Exactly-once over at-least-once transport: the
                    # first arrival committed; replay its reply.
                    return committed
            txn = _Txn(seq)
            txn.trace = request.headers.get(TRACE_HEADER)
            traced = self._trace is not None and txn.trace is not None
            object_started = obs_clock.monotonic()
            try:
                response, body = await self._object(request, txn)
            except (LiveWireError, HTTPDateError) as exc:
                response, body = _error(500, str(exc))
            if traced:
                assert self._trace is not None
                self._emit_decision_spans(
                    request, response, txn, object_started
                )
            payload = response.serialize(body)
            if response.status == 200:
                # Commit-before-reply: once the reply leaves, the
                # transaction is journaled and applied — a crash after
                # this point replays, never re-executes.
                commit_started = obs_clock.monotonic()
                await self._commit(txn, payload)
                if traced:
                    assert self._trace is not None
                    commit_clk = obs_clock.monotonic()
                    self._trace.span(
                        "live.trace.commit",
                        commit_clk - commit_started,
                        {"trace": txn.trace, "clk": commit_clk},
                    )
            return payload

    def _emit_decision_spans(
        self,
        request: Request,
        response: Response,
        txn: _Txn,
        object_started: float,
    ) -> None:
        """The per-exchange decision + upstream spans.

        The decision span is the cache-decision wall *net* of upstream
        fetch time (invalidation-window pulls remain part of the
        decision — they are the sync the decision depends on).  For
        cache hits the meta carries the served copy's age at delivery,
        ``t - Last-Modified`` in simulation seconds — the live
        staleness-exposure distribution ``repro trace summarize``
        reports.
        """
        assert self._trace is not None
        clk = obs_clock.monotonic()
        verdict = response.headers.get(X_CACHE)
        meta: dict[str, object] = {
            "trace": txn.trace,
            "clk": clk,
            "object": request.path,
        }
        if verdict is not None:
            meta["verdict"] = verdict
        if verdict == "HIT":
            t = request.headers.get_date(DATE)
            last_modified = response.headers.last_modified
            if t is not None and last_modified is not None:
                meta["age"] = t - last_modified
        self._trace.span(
            "live.trace.decision",
            (clk - object_started) - txn.upstream_wall,
            meta,
        )
        if txn.upstream_wall > 0.0:
            self._trace.span(
                "live.trace.upstream",
                txn.upstream_wall,
                {"trace": txn.trace, "clk": clk, "object": request.path},
            )

    async def _commit(self, txn: _Txn, payload: str) -> None:
        """Fold one transaction into shared state (and the journal).

        The short critical section of the locking discipline: every
        mutation of cross-object aggregates happens here, under
        ``_state_lock``, after the per-object work completed under its
        own lock.
        """
        async with self._state_lock:
            record = (
                self._txn_record(txn, payload)
                if self._journal is not None
                else None
            )
            if self._journal is not None and record is not None:
                self._journal.append(record)
            self.counters.merge(txn.counters)
            self.bandwidth.merge(txn.bandwidth)
            if self.hardened:
                self.events.extend(txn.events)
            if txn.seq is not None:
                self._done[txn.seq] = payload
            if txn.obj_now is not None:
                self._obj_now[txn.obj_now[0]] = txn.obj_now[1]
            for object_id, cursor in txn.cursors.items():
                self._cursors[object_id] = cursor
            if txn.last_sync is not None:
                self._last_sync = txn.last_sync
            for object_id, n in txn.upstream.items():
                self._upstream[object_id] = n

    def _txn_record(self, txn: _Txn, payload: str) -> dict[str, object]:
        """Serialize one transaction's deltas for the journal."""
        record: dict[str, object] = {"kind": "txn", "payload": payload}
        if txn.seq is not None:
            record["seq"] = txn.seq
        counters = {
            name: getattr(txn.counters, name)
            for name in COUNTER_FIELDS
            if getattr(txn.counters, name)
        }
        if counters:
            record["counters"] = counters
        ledger = {
            table_name: {
                category: count
                for category, count in getattr(
                    txn.bandwidth, table_name
                ).items()
                if count
            }
            for table_name in ("control_bytes", "body_bytes", "exchanges")
        }
        ledger = {k: v for k, v in ledger.items() if v}
        if ledger:
            record["ledger"] = ledger
        if txn.events:
            record["events"] = [list(event) for event in txn.events]
        if txn.cleared:
            record["cleared"] = True
        if txn.touched or txn.cleared:
            record["entries"] = {
                object_id: (
                    _entry_dict(entry) if entry is not None else None
                )
                for object_id in sorted(txn.touched)
                for entry in (self.cache.peek(object_id),)
            }
        if txn.cursors:
            record["cursors"] = dict(txn.cursors)
        if txn.last_sync is not None:
            record["last_sync"] = txn.last_sync
        record["now"] = self._now
        if txn.obj_now is not None:
            record["obj_now"] = [txn.obj_now[0], txn.obj_now[1]]
        if txn.upstream:
            # Only this transaction's (committed) counters: the shared
            # dict may hold increments staged by still-uncommitted
            # siblings, which a restore must not see.
            record["upstream"] = dict(txn.upstream)
        if txn.fault_idx is not None:
            record["fault_idx"] = txn.fault_idx
        state = self.protocol.state_snapshot()
        if state:
            record["state"] = state
        return record

    # -- control endpoints ---------------------------------------------------

    async def _control(self, request: Request) -> tuple[Response, str]:
        endpoint = request.path[len(CONTROL_PREFIX):]
        if endpoint == "stats":
            return self._stats()
        if endpoint == "warm":
            t = request.headers.get_date(DATE)
            if t is None:
                return _error(400, "warm needs a Date header (start time)")
            loaded = await self.warm(t)
            body = f"{loaded}\n"
            response = Response(200, body_size=len(body))
            response.headers.set(CONTENT_LENGTH, str(len(body)))
            return response, body
        if endpoint == "finish":
            t = request.headers.get_date(DATE)
            if t is None:
                return _error(400, "finish needs a Date header (end time)")
            if t < self._now:
                return _error(
                    400,
                    f"finish time {t!r} precedes current time {self._now!r}",
                )
            # The simulator's finish(end_time): trailing invalidations
            # are still delivered (and charged) after the last request.
            # Idempotent — a retried finish finds every cursor already
            # advanced and delivers nothing.
            txn = _Txn()
            await self._deliver(t, txn, object_id=None)
            self._now = float(t)
            await self._commit(txn, "")
            body = "ok\n"
            response = Response(200, body_size=len(body))
            response.headers.set(CONTENT_LENGTH, str(len(body)))
            return response, body
        return _error(404, f"unknown control endpoint {endpoint!r}")

    def _stats(self) -> tuple[Response, str]:
        payload: dict[str, object] = {
            "counters": {
                name: getattr(self.counters, name)
                for name in COUNTER_FIELDS
            },
            "bandwidth": {
                "control_bytes": dict(self.bandwidth.control_bytes),
                "body_bytes": dict(self.bandwidth.body_bytes),
                "exchanges": dict(self.bandwidth.exchanges),
            },
            "wire_bytes": self.wire_bytes,
            "protocol": self.protocol.name,
            "mode": self.mode.value,
        }
        if self.hardened:
            # Extended keys only in hardened modes, so the historical
            # serial replay's stats body stays byte-identical.
            payload["connection_errors"] = self.connection_errors
            payload["events"] = [list(event) for event in self.events]
        body = json.dumps(payload, sort_keys=True) + "\n"
        response = Response(200, body_size=len(body))
        response.headers.set(CONTENT_LENGTH, str(len(body)))
        response.headers.set(CONTENT_TYPE, "json")
        return response, body

    # -- the consistency state machine (mirror of Simulation.step) ----------

    async def _object(
        self, request: Request, txn: _Txn
    ) -> tuple[Response, str]:
        t = request.headers.get_date(DATE)
        if t is None:
            # Ad-hoc clients (curl) may omit Date; serve at the current
            # simulation time so exploration doesn't need header tooling.
            t = self._now
        object_id = request.path
        if self._per_object:
            previous = self._obj_now.get(object_id, self._warm_time)
            if t < previous:
                return _error(
                    400,
                    f"request at {t!r} precedes {previous!r} for "
                    f"{object_id!r}; per-object request streams must be "
                    "time-ordered",
                )
            txn.obj_now = (object_id, float(t))
        elif t < self._now:
            return _error(
                400,
                f"request at {t!r} precedes current time {self._now!r}; "
                "live request streams must be time-ordered",
            )
        self._now = max(self._now, float(t))
        await self._deliver(t, txn, object_id=object_id)
        txn.counters.requests += 1
        obs_metrics.emit("live.requests")

        entry = self.cache.lookup(object_id)
        if entry is None:
            return await self._fetch_and_store(object_id, t, txn)

        if self.protocol.is_fresh(entry, t):
            txn.counters.hits += 1
            # The proxy cannot know whether this hit is stale — that is
            # the point of weak consistency; the driver's audit
            # relabels stale hits from the origin's ground truth.
            txn.events.append(("hit", t, object_id))
            return self._serve_from_cache(entry, t, "HIT")

        if self.mode is SimulatorMode.BASE:
            # Unconditional refetch, even when nothing changed.
            return await self._fetch_and_store(object_id, t, txn)

        # Optimized mode: conditional retrieval.
        txn.counters.validations += 1
        response = await self._origin_get(
            object_id, t, txn, since=entry.last_modified
        )
        if response.status == 304:
            control, body_cost = self.costs.validation_not_modified()
            txn.bandwidth.charge(VALIDATION_304, control, body_cost)
            txn.counters.validations_not_modified += 1
            entry.validated_at = t
            entry.valid = True
            # The 304 re-stamps the Expires header, exactly as the
            # simulator does with NotModified.expires.
            entry.server_expires = response.headers.expires
            self.protocol.on_stored(entry, t)
            self.protocol.on_validation_result(entry, t, was_modified=False)
            txn.counters.hits += 1
            txn.touched.add(object_id)
            txn.events.append(("validation_304", t, object_id))
            return self._serve_from_cache(entry, t, "REVALIDATED")
        control, body_cost = self.costs.validation_modified(
            response.body_size
        )
        txn.bandwidth.charge(VALIDATION_200, control, body_cost)
        txn.counters.misses += 1
        stored = self._store_from_response(object_id, response, t, txn)
        self.protocol.on_validation_result(stored, t, was_modified=True)
        txn.events.append(("validation_200", t, object_id))
        return self._forward(response, "MISS")

    async def _fetch_and_store(
        self, object_id: str, t: float, txn: _Txn
    ) -> tuple[Response, str]:
        """A full retrieval: the mirror of the simulator's
        ``_full_fetch`` (+ store, unless the origin says no-cache)."""
        response = await self._origin_get(object_id, t, txn)
        control, body_cost = self.costs.full_retrieval(response.body_size)
        txn.bandwidth.charge(FULL_RETRIEVAL, control, body_cost)
        txn.counters.full_retrievals += 1
        txn.counters.misses += 1
        if PRAGMA not in response.headers:
            self._store_from_response(object_id, response, t, txn)
            txn.events.append(("miss", t, object_id))
        else:
            txn.events.append(("dynamic_fetch", t, object_id))
        return self._forward(response, "MISS")

    def _serve_from_cache(
        self, entry: CacheEntry, t: float, verdict: str
    ) -> tuple[Response, str]:
        response = make_ok(entry.size, last_modified=entry.last_modified)
        response.headers.set_date(DATE, t)
        response.headers.set(CONTENT_TYPE, entry.file_type)
        if entry.server_expires is not None:
            response.headers.set_date(EXPIRES, entry.server_expires)
        response.headers.set(X_CACHE, verdict)
        return response, "x" * entry.size

    def _forward(
        self, response: Response, verdict: str
    ) -> tuple[Response, str]:
        response.headers.set(X_CACHE, verdict)
        return response, "x" * response.body_size
