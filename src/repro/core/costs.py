"""The paper's network cost model.

Section 4.1: "each message averages 43 bytes and each file averages several
thousand bytes".  Everything the protocols exchange falls into one of two
categories:

* **control messages** — GET request headers, If-Modified-Since queries,
  304 Not Modified replies, 200 response headers, invalidation notices.
  Each is charged a flat :attr:`MessageCosts.control_message` bytes
  (default 43).
* **file bodies** — charged at the object's size in bytes.

A *full retrieval* is request + response headers + body; a *validation
exchange* that ends in 304 is request + reply (two control messages); a
validation that discovers a change folds the new body into the reply
("send this file if it has changed since a specific date"), so it costs
two control messages plus the body.  An invalidation notice is a single
one-way control message.

All knobs are adjustable so benchmarks can probe sensitivity to the
43-byte assumption.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The paper's measured average control-message size, in bytes.
PAPER_MESSAGE_BYTES: int = 43


@dataclass(frozen=True)
class MessageCosts:
    """Byte costs charged for each protocol exchange.

    Attributes:
        control_message: flat size of one control message (request header
            block, response header block, 304 reply, or invalidation
            notice).  The paper's measured average is 43 bytes.
    """

    control_message: int = PAPER_MESSAGE_BYTES

    def __post_init__(self) -> None:
        if self.control_message < 0:
            raise ValueError(
                f"control_message must be non-negative, got {self.control_message}"
            )

    def full_retrieval(self, body_size: int) -> tuple[int, int]:
        """Cost of an unconditional GET returning a body.

        Returns:
            ``(control_bytes, body_bytes)`` — two control messages
            (request headers, response headers) plus the body.
        """
        _check_body(body_size)
        return (2 * self.control_message, body_size)

    def validation_not_modified(self) -> tuple[int, int]:
        """Cost of an If-Modified-Since query answered by 304.

        Returns:
            ``(control_bytes, body_bytes)`` with zero body bytes.
        """
        return (2 * self.control_message, 0)

    def validation_modified(self, body_size: int) -> tuple[int, int]:
        """Cost of an If-Modified-Since query answered with a new body.

        Returns:
            ``(control_bytes, body_bytes)``.
        """
        _check_body(body_size)
        return (2 * self.control_message, body_size)

    def invalidation_notice(self) -> tuple[int, int]:
        """Cost of one server→cache invalidation callback message.

        Returns:
            ``(control_bytes, body_bytes)`` with zero body bytes.
        """
        return (self.control_message, 0)


def _check_body(body_size: int) -> None:
    if body_size < 0:
        raise ValueError(f"body_size must be non-negative, got {body_size}")


#: Default cost model used throughout the reproduction.
DEFAULT_COSTS = MessageCosts()
