"""Hierarchical caching — the topology the paper flattened, rebuilt.

Section 3.0 argues that collapsing Worrell's cache hierarchy to a single
cache never biases the comparison *toward* time-based protocols; Figure 1
walks four scenarios (a-d) showing the collapsed model is either neutral
or favours invalidation.  To verify that argument rather than take it on
faith, this module implements a real multi-level cache tree:

* client requests arrive at leaf caches;
* a miss or expiry is resolved through the parent (which may serve from
  its own, possibly stale, copy — the characteristic hierarchy effect);
* invalidation callbacks flow down the tree, each node notifying only the
  children registered as holding the object;
* every link (child ↔ parent, root ↔ origin) carries its own byte ledger,
  so both total bytes and Worrell's hop-weighted bytes are measurable.

Only optimized-mode (If-Modified-Since) semantics are implemented — the
flattening argument concerns message flows, which are identical in both
modes for the scenarios of Figure 1.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Optional

from repro.core.cache import Cache, CacheEntry
from repro.core.costs import DEFAULT_COSTS, MessageCosts
from repro.core.metrics import (
    FULL_RETRIEVAL,
    INVALIDATION,
    VALIDATION_200,
    VALIDATION_304,
    BandwidthLedger,
    ConsistencyCounters,
)
from repro.core.protocols.base import ConsistencyProtocol
from repro.core.server import FetchResult, NotModified, OriginServer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.plan import FaultPlan


class CacheNode:
    """One cache in the hierarchy.

    Args:
        name: label for reports (e.g. ``cache-1a``).
        protocol: the consistency protocol this node runs.
        parent: the next cache toward the origin, or None for the root
            (which talks to the origin server directly).
        costs: byte cost model for the link to the parent/origin.

    The node's :attr:`uplink` ledger records all traffic on the link
    between this node and its parent (or the origin, for the root).
    """

    def __init__(
        self,
        name: str,
        protocol: ConsistencyProtocol,
        parent: Optional["CacheNode"] = None,
        costs: MessageCosts = DEFAULT_COSTS,
    ) -> None:
        self.name = name
        self.protocol = protocol
        self.parent = parent
        self.costs = costs
        #: Section 4.1 charging policy (see the single-cache simulator):
        #: False (the hierarchy default) counts an invalidation only when
        #: it flips a valid entry — holder registration means a node is
        #: never re-notified about an entry it already knows is invalid.
        #: :class:`HierarchySimulation` propagates its own flag here.
        self.charge_per_modification = False
        self.cache = Cache()
        self.uplink = BandwidthLedger()
        self.counters = ConsistencyCounters()
        #: Children registered as holding each object (for invalidation
        #: fan-out); populated as children fetch through this node.
        self._holders: dict[str, set[CacheNode]] = {}
        self._children: list[CacheNode] = []
        if parent is not None:
            parent._children.append(self)
        self._origin: Optional[OriginServer] = None

    # -- wiring -----------------------------------------------------------------

    @property
    def children(self) -> tuple["CacheNode", ...]:
        """Caches directly below this node."""
        return tuple(self._children)

    def attach_origin(self, server: OriginServer) -> None:
        """Connect the root node to the origin server.

        Raises:
            ValueError: when called on a non-root node.
        """
        if self.parent is not None:
            raise ValueError(f"{self.name} is not the root of its hierarchy")
        self._origin = server

    @property
    def depth(self) -> int:
        """Number of links between this node and the origin (root = 1)."""
        node, hops = self, 1
        while node.parent is not None:
            node = node.parent
            hops += 1
        return hops

    # -- upstream operations -------------------------------------------------------

    def _origin_or_fail(self) -> OriginServer:
        if self._origin is None:
            raise RuntimeError(
                f"root node {self.name!r} has no origin attached; "
                "call attach_origin() first"
            )
        return self._origin

    def _register_holder(self, object_id: str, child: "CacheNode") -> None:
        self._holders.setdefault(object_id, set()).add(child)

    def _store(self, object_id: str, file_type: str, result: FetchResult,
               t: float) -> CacheEntry:
        entry = CacheEntry(
            object_id=object_id,
            version=result.version,
            size=result.size,
            file_type=file_type,
            fetched_at=t,
            validated_at=t,
            last_modified=result.last_modified,
            valid=True,
            server_expires=result.expires,
        )
        self.cache.store(entry)
        self.protocol.on_stored(entry, t)
        return entry

    def ensure_fresh(self, object_id: str, t: float) -> CacheEntry:
        """Return an entry this node considers servable at time ``t``.

        Resolves misses and expiries through the parent (or origin at the
        root), charging the uplink.  The returned entry may still be
        *stale* with respect to the origin — that is the whole point of
        weak consistency.
        """
        entry = self.cache.lookup(object_id)
        if entry is not None and self.protocol.is_fresh(entry, t):
            return entry

        if entry is None:
            result = self._fetch_full(object_id, t)
            self.counters.misses += 1
            self.counters.full_retrievals += 1
            return self._store(object_id, self._file_type(object_id), result, t)

        # Present but not fresh: conditional retrieval upstream.
        self.counters.validations += 1
        result = self._fetch_conditional(object_id, t, entry.last_modified)
        if isinstance(result, NotModified):
            self.counters.validations_not_modified += 1
            entry.validated_at = t
            entry.valid = True
            # The 304 carries a refreshed Expires (see the single-cache
            # simulator): apply it before the protocol re-stamps expiry.
            entry.server_expires = result.expires
            self.protocol.on_stored(entry, t)
            self.protocol.on_validation_result(entry, t, was_modified=False)
            return entry
        self.counters.misses += 1
        entry = self._store(object_id, self._file_type(object_id), result, t)
        self.protocol.on_validation_result(entry, t, was_modified=True)
        return entry

    def _file_type(self, object_id: str) -> str:
        node: CacheNode = self
        while node.parent is not None:
            node = node.parent
        return node._origin_or_fail().object(object_id).file_type

    def _fetch_full(self, object_id: str, t: float) -> FetchResult:
        if self.parent is None:
            result = self._origin_or_fail().get(object_id, t)
            self.counters.server_gets += 1
        else:
            upstream = self.parent.ensure_fresh(object_id, t)
            self.parent._register_holder(object_id, self)
            result = FetchResult(
                version=upstream.version,
                last_modified=upstream.last_modified,
                size=upstream.size,
                expires=upstream.server_expires,
            )
        control, body = self.costs.full_retrieval(result.size)
        self.uplink.charge(FULL_RETRIEVAL, control, body)
        return result

    def _fetch_conditional(
        self, object_id: str, t: float, since: float
    ) -> "FetchResult | NotModified":
        if self.parent is None:
            self.counters.server_ims_queries += 1
            result = self._origin_or_fail().if_modified_since(object_id, t, since)
        else:
            upstream = self.parent.ensure_fresh(object_id, t)
            self.parent._register_holder(object_id, self)
            if upstream.last_modified <= since:
                # The parent's 304 forwards its own (possibly refreshed)
                # Expires downstream, like the origin's does.
                result = NotModified(expires=upstream.server_expires)
            else:
                result = FetchResult(
                    version=upstream.version,
                    last_modified=upstream.last_modified,
                    size=upstream.size,
                    expires=upstream.server_expires,
                )
        if isinstance(result, NotModified):
            control, body = self.costs.validation_not_modified()
            self.uplink.charge(VALIDATION_304, control, body)
        else:
            control, body = self.costs.validation_modified(result.size)
            self.uplink.charge(VALIDATION_200, control, body)
        return result

    # -- invalidation fan-out ----------------------------------------------------------

    def receive_invalidation(
        self, object_id: str, modified_at: Optional[float] = None
    ) -> None:
        """Handle an invalidation callback for ``object_id``.

        Marks the local entry invalid (if valid and resident) and forwards
        the notice to every registered child holder, charging each child's
        uplink one control message.  Registration is consumed: a child
        must fetch through again to receive future callbacks.

        Args:
            modified_at: the modification generation the notice
                announces; forwarded down the tree so
                :meth:`~repro.core.cache.Cache.invalidate` can ignore
                callbacks a node's refetch has already superseded (see
                :mod:`repro.faults`).
        """
        resident = self.cache.peek(object_id) is not None
        went_invalid = self.cache.invalidate(object_id, modified_at=modified_at)
        if went_invalid or (resident and self.charge_per_modification):
            self.counters.invalidations_received += 1
        holders = self._holders.pop(object_id, set())
        control, body = self.costs.invalidation_notice()
        for child in holders:
            child.uplink.charge(INVALIDATION, control, body)
            self.counters.server_invalidations_sent += 1
            child.receive_invalidation(object_id, modified_at=modified_at)


class HierarchySimulation:
    """Drive client requests against a cache tree.

    Args:
        server: the origin.
        root: the root cache node (will have the origin attached).
        leaves: the caches that receive client requests.
        deliver_invalidations: when True, the origin's modification feed
            is delivered to the root (which fans out) before each request,
            as the invalidation protocol requires.
        charge_per_modification: Section 4.1 charging policy.  The
            hierarchy default is False — holder registration is consumed
            on callback, so a node is never re-notified about an entry it
            already marked invalid, and the origin↔root link follows the
            same transition-only rule.  True charges the root link for
            every modification of a resident entry, matching the
            single-cache simulator's default reading of §4.1.
        faults: an optional :class:`repro.faults.FaultPlan` applied to
            the origin→root link: a notice whose send instant falls in a
            downtime window, or that the per-message loss draw kills, is
            never delivered to the tree at all — the hierarchy analogue
            of the single-cache loss model (retry/backoff/delay are
            single-cache refinements and are not modelled per hop).
    """

    def __init__(
        self,
        server: OriginServer,
        root: CacheNode,
        leaves: Iterable[CacheNode],
        *,
        deliver_invalidations: bool = False,
        charge_per_modification: bool = False,
        costs: MessageCosts = DEFAULT_COSTS,
        faults: Optional["FaultPlan"] = None,
    ) -> None:
        self.server = server
        self.root = root
        self.leaves = {leaf.name: leaf for leaf in leaves}
        self.costs = costs
        root.attach_origin(server)
        self.charge_per_modification = bool(charge_per_modification)
        for node in self._all_nodes():
            node.charge_per_modification = self.charge_per_modification
        self._deliver = deliver_invalidations
        self._feed = server.invalidation_feed() if deliver_invalidations else ()
        self._feed_idx = 0
        self._now = 0.0
        self.faults = faults

    def preload(self, at: float = 0.0) -> None:
        """Load valid copies of every object into every node, registering
        holder relationships so invalidations can fan out."""
        for node in self._all_nodes():
            node.cache.preload_from(self.server, at=at)
            for entry in node.cache:
                node.protocol.on_stored(entry, at)
            if node.parent is not None:
                for oid in self.server.object_ids:
                    node.parent._register_holder(oid, node)

    def _all_nodes(self) -> list[CacheNode]:
        nodes, frontier = [], [self.root]
        while frontier:
            node = frontier.pop()
            nodes.append(node)
            frontier.extend(node.children)
        return nodes

    def _deliver_until(self, t: float) -> None:
        feed = self._feed
        idx = self._feed_idx
        faults = self.faults
        control, body = self.costs.invalidation_notice()
        while idx < len(feed) and feed[idx][0] <= t:
            mod_time, oid = feed[idx]
            index = idx
            idx += 1
            if faults is not None and faults.server_down(mod_time):
                # Outage: the origin never records the pending notice.
                continue
            entry = self.root.cache.peek(oid)
            if faults is not None and faults.attempt_lost(index, 0):
                # Lost on the wire: charged if it would have been sent,
                # but the tree never hears it.
                if entry is not None and (
                    entry.valid or self.charge_per_modification
                ):
                    self.root.uplink.charge(INVALIDATION, control, body)
                    self.root.counters.server_invalidations_sent += 1
                continue
            # The origin notifies the root over the root's uplink —
            # per §4.1 policy, either on every modification of a resident
            # entry or only on the valid→invalid transition.
            if entry is not None and (
                entry.valid or self.charge_per_modification
            ):
                self.root.uplink.charge(INVALIDATION, control, body)
                self.root.counters.server_invalidations_sent += 1
            self.root.receive_invalidation(oid, modified_at=mod_time)
        self._feed_idx = idx

    def request(self, leaf_name: str, object_id: str, t: float) -> bool:
        """Serve one client request at the named leaf.

        Returns:
            True when the response content was stale relative to the
            origin at time ``t``.

        Raises:
            KeyError: for an unknown leaf.
            ValueError: for out-of-order timestamps.
        """
        if t < self._now:
            raise ValueError(f"request at {t!r} precedes {self._now!r}")
        self._now = t
        if self._deliver:
            self._deliver_until(t)
        leaf = self.leaves[leaf_name]
        leaf.counters.requests += 1
        entry = leaf.ensure_fresh(object_id, t)
        stale = entry.version < self.server.version_at(object_id, t)
        if stale:
            leaf.counters.stale_hits += 1
        return stale

    def finish(self, end_time: float) -> None:
        """Deliver any trailing invalidations up to ``end_time``."""
        if self._deliver:
            self._deliver_until(end_time)

    # -- measurement ---------------------------------------------------------------

    def total_bytes(self) -> int:
        """Total bytes moved on every link of the hierarchy."""
        return sum(node.uplink.total_bytes for node in self._all_nodes())

    def hop_weighted_bytes(self) -> int:
        """Worrell's goodness metric: bytes on each link weighted by the
        link's distance from the origin (root link = 1)."""
        return sum(
            node.uplink.total_bytes * node.depth for node in self._all_nodes()
        )

    def message_count(self) -> int:
        """Total exchanges (control-level events) across all links."""
        return sum(
            sum(node.uplink.exchanges.values()) for node in self._all_nodes()
        )

    def leaf_counters(self) -> ConsistencyCounters:
        """Merged request-level counters across all leaf caches."""
        merged = ConsistencyCounters()
        for leaf in self.leaves.values():
            merged.requests += leaf.counters.requests
            merged.stale_hits += leaf.counters.stale_hits
        return merged


def two_level_tree(
    protocol_factory: "Callable[[], ConsistencyProtocol]",
    fan_out: int = 2,
    costs: MessageCosts = DEFAULT_COSTS,
) -> tuple[CacheNode, list[CacheNode]]:
    """Build the paper's topology: one second-level cache over N leaves.

    Returns:
        ``(root, leaves)`` ready to hand to :class:`HierarchySimulation`.

    Raises:
        ValueError: for a non-positive fan-out.
    """
    if fan_out <= 0:
        raise ValueError(f"fan_out must be positive: {fan_out}")
    root = CacheNode("cache-2", protocol_factory(), costs=costs)
    leaves = [
        CacheNode(f"cache-1{chr(ord('a') + i)}", protocol_factory(),
                  parent=root, costs=costs)
        for i in range(fan_out)
    ]
    return root, leaves


def drive_workload(
    server: OriginServer,
    protocol_factory: "Callable[[], ConsistencyProtocol]",
    workload_requests: "Iterable[tuple[float, str]]",
    *,
    clients: "Optional[list[str]]" = None,
    fan_out: int = 2,
    deliver_invalidations: bool = False,
    charge_per_modification: bool = False,
    end_time: Optional[float] = None,
    costs: MessageCosts = DEFAULT_COSTS,
    faults: "Optional[FaultPlan]" = None,
) -> HierarchySimulation:
    """Run a full request stream through a two-level hierarchy.

    Each client hostname is pinned to one leaf cache (stable CRC32 hash,
    so runs are reproducible across processes), modelling the regional
    caches of Worrell's topology; workloads without client labels
    alternate leaves per request.

    Returns:
        The completed :class:`HierarchySimulation`, ready for its
        measurement accessors.
    """
    root, leaves = two_level_tree(protocol_factory, fan_out, costs)
    sim = HierarchySimulation(
        server, root, leaves,
        deliver_invalidations=deliver_invalidations,
        charge_per_modification=charge_per_modification,
        costs=costs,
        faults=faults,
    )
    sim.preload(at=0.0)
    from zlib import crc32

    names = [leaf.name for leaf in leaves]
    last_t = 0.0
    for index, (t, oid) in enumerate(workload_requests):
        if clients is not None:
            leaf = names[crc32(clients[index].encode()) % fan_out]
        else:
            leaf = names[index % fan_out]
        sim.request(leaf, oid, t)
        last_t = t
    sim.finish(end_time if end_time is not None else last_t)
    return sim
