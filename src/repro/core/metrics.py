"""Bandwidth and consistency accounting.

The paper evaluates protocols on four axes:

* **bandwidth** — "the number of bytes required to maintain consistency,
  including invalidation messages, stale data checks, and file data
  movement" (Section 3).  The :class:`BandwidthLedger` tracks bytes split
  into control-message bytes vs file-body bytes, further broken down by
  exchange kind so the figures' explanations ("the effect of saving file
  transfers is much more pronounced than the effect of sending more server
  queries") can be verified directly.
* **cache miss rate** — requests that required a file transfer.
* **stale hit rate** — requests served from cache when the origin already
  held a newer version.
* **server load** — total server operations: document requests, staleness
  queries, and invalidation sends (Figure 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Exchange categories tracked by the ledger.
FULL_RETRIEVAL = "full_retrieval"
VALIDATION_304 = "validation_304"
VALIDATION_200 = "validation_200"
INVALIDATION = "invalidation"
#: Server-push transfers of the eager invalidation variant: bodies moved
#: on modification, before (and regardless of) any client request.
PREFETCH = "prefetch"

_CATEGORIES = (FULL_RETRIEVAL, VALIDATION_304, VALIDATION_200, INVALIDATION,
               PREFETCH)


@dataclass
class BandwidthLedger:
    """Byte accounting split by exchange category and payload kind."""

    control_bytes: dict[str, int] = field(
        default_factory=lambda: {c: 0 for c in _CATEGORIES}
    )
    body_bytes: dict[str, int] = field(
        default_factory=lambda: {c: 0 for c in _CATEGORIES}
    )
    exchanges: dict[str, int] = field(
        default_factory=lambda: {c: 0 for c in _CATEGORIES}
    )

    def charge(self, category: str, control: int, body: int) -> None:
        """Record one exchange of ``category`` costing the given bytes."""
        if category not in self.control_bytes:
            raise KeyError(f"unknown exchange category: {category!r}")
        if control < 0 or body < 0:
            raise ValueError("byte counts must be non-negative")
        self.control_bytes[category] += control
        self.body_bytes[category] += body
        self.exchanges[category] += 1

    @property
    def total_control_bytes(self) -> int:
        """All control-message bytes across categories."""
        return sum(self.control_bytes.values())

    @property
    def total_body_bytes(self) -> int:
        """All file-body bytes across categories."""
        return sum(self.body_bytes.values())

    @property
    def total_bytes(self) -> int:
        """Total consistency bandwidth in bytes (the figures' y axis)."""
        return self.total_control_bytes + self.total_body_bytes

    @property
    def total_megabytes(self) -> float:
        """Total bandwidth in MB (the unit Figures 2/4/6 plot)."""
        return self.total_bytes / 1_000_000.0

    def merge(self, other: "BandwidthLedger") -> None:
        """Fold another ledger's counts into this one."""
        for cat in _CATEGORIES:
            self.control_bytes[cat] += other.control_bytes[cat]
            self.body_bytes[cat] += other.body_bytes[cat]
            self.exchanges[cat] += other.exchanges[cat]


@dataclass
class ConsistencyCounters:
    """Request-level and server-level event counts for one simulation run."""

    #: Client requests presented to the cache.
    requests: int = 0
    #: Requests served from the cache without any file transfer.
    hits: int = 0
    #: Requests that required transferring the file body (the paper's
    #: definition of a cache miss under the optimized simulator:
    #: "Cache misses are recorded only when a file actually needs to be
    #: transferred to the cache").
    misses: int = 0
    #: Hits that returned content older than what the origin held.
    stale_hits: int = 0
    #: Summed "staleness lag" over stale hits: for each, how long (in
    #: simulation seconds) the served entry had already been out of date.
    #: TTL's stale hits are bounded by the TTL; Alex's by threshold*age —
    #: this quantifies how *badly* stale the weak protocols get, a
    #: severity dimension the paper's stale-hit *count* does not capture.
    stale_age_sum: float = 0.0
    #: If-Modified-Since queries issued by the cache.
    validations: int = 0
    #: Validations answered 304 Not Modified.
    validations_not_modified: int = 0
    #: Full (unconditional) retrievals issued by the cache.
    full_retrievals: int = 0
    #: Invalidation notices delivered to the cache.
    invalidations_received: int = 0
    #: Eager-invalidation pushes: bodies transferred at modification
    #: time, not on a client's critical path.
    prefetches: int = 0
    #: Server-side operation counts (Figure 8's "server operations").
    server_gets: int = 0
    server_ims_queries: int = 0
    server_invalidations_sent: int = 0

    @property
    def server_operations(self) -> int:
        """Total server load: GETs + IMS queries + invalidation sends."""
        return (
            self.server_gets
            + self.server_ims_queries
            + self.server_invalidations_sent
        )

    @property
    def round_trips(self) -> int:
        """Client-visible synchronous server round trips.

        Section 2.0 notes Worrell's mark-don't-fetch optimization
        "increased latency on subsequent accesses, but decreased
        bandwidth"; this metric quantifies that latency side: every
        validation or full retrieval stalls the requesting client for
        one server round trip, while a (possibly stale) cache hit costs
        none.
        """
        return self.validations + self.full_retrievals

    @property
    def mean_round_trips(self) -> float:
        """Average synchronous round trips per client request."""
        return self.round_trips / self.requests if self.requests else 0.0

    @property
    def miss_rate(self) -> float:
        """Fraction of requests that transferred a body (0 when idle)."""
        return self.misses / self.requests if self.requests else 0.0

    @property
    def hit_rate(self) -> float:
        """Fraction of requests served without a body transfer."""
        return self.hits / self.requests if self.requests else 0.0

    @property
    def stale_hit_rate(self) -> float:
        """Fraction of requests that returned stale content."""
        return self.stale_hits / self.requests if self.requests else 0.0

    @property
    def mean_stale_age(self) -> float:
        """Average staleness lag (seconds) over the stale hits; 0 when
        no stale hit occurred."""
        return self.stale_age_sum / self.stale_hits if self.stale_hits else 0.0

    def merge(self, other: "ConsistencyCounters") -> None:
        """Fold another run's counters into this one."""
        self.requests += other.requests
        self.hits += other.hits
        self.misses += other.misses
        self.stale_hits += other.stale_hits
        self.stale_age_sum += other.stale_age_sum
        self.validations += other.validations
        self.validations_not_modified += other.validations_not_modified
        self.full_retrievals += other.full_retrievals
        self.invalidations_received += other.invalidations_received
        self.prefetches += other.prefetches
        self.server_gets += other.server_gets
        self.server_ims_queries += other.server_ims_queries
        self.server_invalidations_sent += other.server_invalidations_sent

    def check_invariants(self) -> None:
        """Raise AssertionError if the counters are internally inconsistent.

        These are the bookkeeping identities every simulation run must
        satisfy; the property-based tests lean on them.
        """
        assert self.hits + self.misses == self.requests, (
            f"hits({self.hits}) + misses({self.misses}) "
            f"!= requests({self.requests})"
        )
        assert self.stale_hits <= self.hits, (
            f"stale_hits({self.stale_hits}) > hits({self.hits})"
        )
        assert self.validations_not_modified <= self.validations
        assert self.server_ims_queries == self.validations
        assert self.server_gets == self.full_retrievals + self.prefetches
