"""The proxy cache model.

One :class:`Cache` stands between the clients and the origin server — the
paper's flattened hierarchy ("we flattened the cache hierarchy to model a
single cache", Section 3.0).  The cache is a table of
:class:`CacheEntry` records carrying exactly the state the three
consistency protocols consult:

* ``version`` / ``last_modified`` — what content the cache holds and the
  Last-Modified timestamp it learned when it fetched or validated it
  (the Alex protocol's age reference).
* ``validated_at`` — when the cache last confirmed the entry with the
  origin (fetch or 304); TTL and Alex windows are measured from here.
* ``valid`` — the invalidation protocol's flag, cleared by a callback.
* ``expires_at`` — an absolute expiry precomputed by TTL-family protocols
  (server Expires header, CERN policy, or plain TTL).

The paper's simulations use an unbounded cache that never evicts valid
entries ("since valid entries are never evicted from the cache, it also
produces the near perfect cache miss rates").  Capacity-bounded
operation — built-in LRU or any pluggable policy from
:mod:`repro.core.replacement` — is supported as an extension knob for
the ablation benchmarks and the capacity-planning example.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Iterator, Optional

from repro.core.server import OriginServer
from repro.obs import registry as obs_metrics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.replacement import ReplacementPolicy


class CacheEntry:
    """Per-object cache state.

    Attributes:
        object_id: the cached object's identifier.
        version: content version held by the cache.
        size: body size in bytes.
        file_type: coarse content type (for the self-tuning protocol).
        fetched_at: when the body was last transferred into the cache.
        validated_at: when the entry was last confirmed with the origin
            (body transfer or 304 reply).
        last_modified: the origin Last-Modified timestamp known to the
            cache at validation time.
        valid: invalidation-protocol flag; True until a callback arrives.
        expires_at: absolute expiry assigned by TTL-family protocols, or
            ``None`` when the governing protocol does not use one.
        server_expires: the Expires timestamp the origin attached to the
            last retrieval, if any.
    """

    __slots__ = (
        "object_id",
        "version",
        "size",
        "file_type",
        "fetched_at",
        "validated_at",
        "last_modified",
        "valid",
        "expires_at",
        "server_expires",
    )

    def __init__(
        self,
        object_id: str,
        version: int,
        size: int,
        file_type: str,
        fetched_at: float,
        validated_at: float,
        last_modified: float,
        valid: bool = True,
        expires_at: Optional[float] = None,
        server_expires: Optional[float] = None,
    ) -> None:
        self.object_id = object_id
        self.version = version
        self.size = size
        self.file_type = file_type
        self.fetched_at = fetched_at
        self.validated_at = validated_at
        self.last_modified = last_modified
        self.valid = valid
        self.expires_at = expires_at
        self.server_expires = server_expires

    @property
    def age(self) -> float:
        """Age of the content as known to the cache, measured at the last
        validation: ``validated_at - last_modified``.

        This is the Alex protocol's age term — "The update threshold is
        expressed as a percentage of the object's age."
        """
        return self.validated_at - self.last_modified

    def __repr__(self) -> str:
        return (
            f"CacheEntry({self.object_id!r}, v{self.version}, "
            f"valid={self.valid}, validated_at={self.validated_at!r})"
        )


class Cache:
    """A single proxy cache.

    Args:
        capacity_bytes: optional byte capacity; ``None`` (the default, and
            the paper's configuration) means unbounded.  When bounded,
            insertion evicts entries until the new entry fits.
        policy: replacement policy choosing eviction victims when the
            cache is bounded (see :mod:`repro.core.replacement`);
            ``None`` selects the built-in LRU fast path.

    Raises:
        ValueError: if ``capacity_bytes`` is negative or zero, or a
            policy is supplied for an unbounded cache.
    """

    def __init__(
        self,
        capacity_bytes: Optional[int] = None,
        policy: Optional["ReplacementPolicy"] = None,
    ) -> None:
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ValueError(
                f"capacity_bytes must be positive or None, got {capacity_bytes}"
            )
        if policy is not None and capacity_bytes is None:
            raise ValueError(
                "a replacement policy is meaningless without capacity_bytes"
            )
        self._entries: OrderedDict[str, CacheEntry] = OrderedDict()
        self._capacity = capacity_bytes
        self._policy = policy
        self._used_bytes = 0
        self.evictions = 0

    # -- introspection --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, object_id: object) -> bool:
        return object_id in self._entries

    def __iter__(self) -> Iterator[CacheEntry]:
        return iter(self._entries.values())

    @property
    def capacity_bytes(self) -> Optional[int]:
        """Configured byte capacity, or None when unbounded."""
        return self._capacity

    @property
    def used_bytes(self) -> int:
        """Total body bytes currently resident."""
        return self._used_bytes

    # -- operations ------------------------------------------------------------

    @property
    def policy(self) -> Optional["ReplacementPolicy"]:
        """The replacement policy, or None for the built-in LRU."""
        return self._policy

    def lookup(self, object_id: str) -> Optional[CacheEntry]:
        """Return the entry for ``object_id`` (updating replacement
        bookkeeping), or None."""
        entry = self._entries.get(object_id)
        if entry is not None and self._capacity is not None:
            if self._policy is not None:
                self._policy.on_access(entry)
            else:
                self._entries.move_to_end(object_id)
        return entry

    def peek(self, object_id: str) -> Optional[CacheEntry]:
        """Return the entry without touching LRU order (for inspection)."""
        return self._entries.get(object_id)

    def store(self, entry: CacheEntry) -> None:
        """Insert or replace an entry, evicting LRU entries if over capacity.

        Raises:
            ValueError: when the entry alone exceeds a bounded capacity.
        """
        obs_metrics.emit("cache.stores")
        old = self._entries.pop(entry.object_id, None)
        if old is not None:
            self._used_bytes -= old.size
        if self._capacity is not None and entry.size > self._capacity:
            raise ValueError(
                f"entry {entry.object_id!r} ({entry.size} B) exceeds cache "
                f"capacity ({self._capacity} B)"
            )
        self._entries[entry.object_id] = entry
        self._used_bytes += entry.size
        if self._capacity is not None and self._policy is not None:
            self._policy.on_store(entry)
            while self._used_bytes > self._capacity:
                try:
                    victim_id = self._policy.choose_victim(
                        self._entries, protect=entry.object_id
                    )
                except LookupError:
                    break
                victim = self._entries.pop(victim_id)
                self._used_bytes -= victim.size
                self._policy.on_evict(victim)
                self.evictions += 1
                obs_metrics.emit("cache.evictions")
        elif self._capacity is not None:
            while self._used_bytes > self._capacity:
                evicted_id, evicted = self._entries.popitem(last=False)
                if evicted_id == entry.object_id:
                    # Put the new entry back; nothing else left to evict.
                    self._entries[evicted_id] = evicted
                    break
                self._used_bytes -= evicted.size
                self.evictions += 1
                obs_metrics.emit("cache.evictions")

    def invalidate(
        self, object_id: str, modified_at: Optional[float] = None
    ) -> bool:
        """Mark an entry invalid (invalidation-protocol callback).

        Per Worrell's optimization, "objects were simply marked invalid,
        but not immediately retrieved".

        Args:
            modified_at: the modification timestamp the callback
                announces, when known.  A callback for a *superseded
                generation* — one whose modification the entry's
                ``last_modified`` already reflects, because the object
                was evicted (or crashed away) and refetched after the
                change — must not clear the fresh entry's flag.  This
                matters once delivery can be delayed or retried (see
                :mod:`repro.faults`); with in-order immediate delivery
                the guard never fires.

        Returns:
            True when a resident, currently-valid entry was invalidated;
            False when the object is absent, already invalid, or the
            notice is for a superseded generation (no state changed).
        """
        entry = self._entries.get(object_id)
        if entry is None or not entry.valid:
            return False
        if modified_at is not None and entry.last_modified >= modified_at:
            return False
        entry.valid = False
        obs_metrics.emit("cache.invalidated")
        return True

    def clear(self) -> int:
        """Drop every entry at once (a cache crash with state loss).

        Unlike :meth:`drop`, nothing counts toward :attr:`evictions` —
        a crash is a fault, not a replacement decision — but any
        replacement policy is still told each entry is gone so its
        bookkeeping cannot reference ghosts.

        Returns:
            The number of entries lost.
        """
        lost = len(self._entries)
        if self._policy is not None:
            for entry in self._entries.values():
                self._policy.on_evict(entry)
        self._entries.clear()
        self._used_bytes = 0
        if lost:
            obs_metrics.emit("cache.crash_drops", float(lost))
        return lost

    def drop(self, object_id: str) -> None:
        """Remove an entry outright (used by eviction experiments).

        Counts toward :attr:`evictions` exactly like a capacity eviction
        (and notifies the policy the same way), so eviction statistics do
        not depend on which code path removed the entry.
        """
        entry = self._entries.pop(object_id, None)
        if entry is not None:
            self._used_bytes -= entry.size
            if self._policy is not None:
                self._policy.on_evict(entry)
            self.evictions += 1
            obs_metrics.emit("cache.evictions")

    def preload_from(self, server: OriginServer, at: float = 0.0) -> int:
        """Load a valid copy of every cacheable server object.

        Figures 2-7 all start from this state: "The cache is pre-loaded
        with valid copies of all the files held in the primary server."
        Entries are marked fetched/validated at time ``at`` with the
        origin's Last-Modified at that instant, so objects enter the
        simulation carrying their real pre-trace ages.

        Returns:
            The number of entries loaded.
        """
        loaded = 0
        for oid, history in server.histories().items():
            obj = history.obj
            if not obj.cacheable:
                continue
            result = server.get(oid, at)
            self.store(
                CacheEntry(
                    object_id=oid,
                    version=result.version,
                    size=result.size,
                    file_type=obj.file_type,
                    fetched_at=at,
                    validated_at=at,
                    last_modified=result.last_modified,
                    valid=True,
                    server_expires=result.expires,
                )
            )
            loaded += 1
        return loaded
