"""Simulated time for the cache-consistency simulator.

All simulator timestamps are plain floats measured in **seconds** since the
simulation epoch (t = 0).  The paper talks about parameters in hours (TTL
values of 0-500 hours), percentages of object age (Alex update thresholds),
and trace durations in days, so this module centralizes the unit
conversions to keep the rest of the code free of magic constants.

The :class:`SimClock` is a tiny monotonic clock used by the simulation
loops; it exists mostly so that invariants ("time never goes backwards")
are checked in one place instead of being implicit in every loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: One second of simulated time.
SECOND: float = 1.0
#: One minute of simulated time, in seconds.
MINUTE: float = 60.0
#: One hour of simulated time, in seconds.
HOUR: float = 3600.0
#: One day of simulated time, in seconds.
DAY: float = 86400.0
#: One (30-day) month of simulated time, in seconds.  The paper's campus
#: traces cover "a one-month period".
MONTH: float = 30 * DAY


def seconds(n: float) -> float:
    """Return ``n`` seconds expressed in simulation time units."""
    return float(n) * SECOND


def minutes(n: float) -> float:
    """Return ``n`` minutes expressed in simulation time units."""
    return float(n) * MINUTE


def hours(n: float) -> float:
    """Return ``n`` hours expressed in simulation time units.

    TTL sweeps in the paper (Figures 2-8, "TTL value (hours)") use this.
    """
    return float(n) * HOUR


def days(n: float) -> float:
    """Return ``n`` days expressed in simulation time units."""
    return float(n) * DAY


def to_hours(t: float) -> float:
    """Convert a simulation time/interval ``t`` to hours."""
    return t / HOUR


def to_days(t: float) -> float:
    """Convert a simulation time/interval ``t`` to days."""
    return t / DAY


@dataclass
class SimClock:
    """A monotonically non-decreasing simulated clock.

    The simulator advances the clock to each event's timestamp via
    :meth:`advance_to`.  Moving backwards raises ``ValueError`` — event
    streams handed to the simulator must already be time ordered, and this
    clock is where that contract is enforced.
    """

    now: float = 0.0
    _started: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        self._started = self.now

    def advance_to(self, t: float) -> float:
        """Advance the clock to time ``t`` and return it.

        Raises:
            ValueError: if ``t`` is earlier than the current time.
        """
        if t < self.now:
            raise ValueError(
                f"clock moved backwards: {t!r} < {self.now!r}; "
                "event streams must be sorted by timestamp"
            )
        self.now = t
        return self.now

    @property
    def elapsed(self) -> float:
        """Simulated time elapsed since the clock was created."""
        return self.now - self._started
