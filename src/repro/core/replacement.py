"""Cache replacement policies for capacity-bounded operation.

The paper sidesteps replacement entirely — its cache is unbounded and
"valid entries are never evicted".  A deployable proxy cannot assume
that, and the mid-90s literature studied exactly this question for Web
workloads (LRU vs frequency- vs size-aware eviction).  This module
provides the classic policies so the capacity ablations can quantify how
much of the paper's "near perfect miss rates" rests on the unbounded
assumption, and which policy loses the least under pressure:

* :class:`LRUPolicy` — evict the least recently used entry.
* :class:`FIFOPolicy` — evict the oldest-inserted entry.
* :class:`LFUPolicy` — evict the least frequently used entry
  (ties broken by recency).
* :class:`SizePolicy` — evict the largest entry first (many small
  objects beat one big one when hits are what you optimize — the
  SIZE policy of Williams et al., 1996).

A policy is a pure ranking: the cache asks it which resident entry to
evict next.  Policies keep their own bookkeeping, updated through the
``on_store``/``on_access``/``on_evict`` hooks.
"""

from __future__ import annotations

import abc
import itertools
from typing import Optional

from repro.core.cache import CacheEntry


class ReplacementPolicy(abc.ABC):
    """Chooses eviction victims for a capacity-bounded cache."""

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Short label (``lru``, ``fifo``, ``lfu``, ``size``)."""

    @abc.abstractmethod
    def on_store(self, entry: CacheEntry) -> None:
        """An entry was inserted (or replaced)."""

    @abc.abstractmethod
    def on_access(self, entry: CacheEntry) -> None:
        """An entry served a lookup."""

    @abc.abstractmethod
    def on_evict(self, entry: CacheEntry) -> None:
        """An entry left the cache (eviction or explicit drop)."""

    @abc.abstractmethod
    def choose_victim(
        self, resident: dict[str, CacheEntry], protect: Optional[str] = None
    ) -> str:
        """Return the object id to evict next.

        Args:
            resident: the currently resident entries by id (non-empty).
            protect: an id that must not be chosen (the entry being
                inserted), or None.

        Raises:
            LookupError: when every resident entry is protected.
        """

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class _SequencedPolicy(ReplacementPolicy):
    """Shared machinery: policies that rank by a per-entry sort key."""

    def __init__(self) -> None:
        self._ticks = itertools.count()
        self._stamp: dict[str, int] = {}

    def _tick(self, entry: CacheEntry) -> None:
        self._stamp[entry.object_id] = next(self._ticks)

    def on_evict(self, entry: CacheEntry) -> None:
        self._stamp.pop(entry.object_id, None)

    def _key(self, entry: CacheEntry) -> int:
        raise NotImplementedError

    def choose_victim(
        self, resident: dict[str, CacheEntry], protect: Optional[str] = None
    ) -> str:
        candidates = [
            entry for oid, entry in resident.items() if oid != protect
        ]
        if not candidates:
            raise LookupError("no evictable entries (all protected)")
        victim = min(candidates, key=self._key)
        return victim.object_id


class LRUPolicy(_SequencedPolicy):
    """Least recently used: classic temporal locality."""

    @property
    def name(self) -> str:
        return "lru"

    def on_store(self, entry: CacheEntry) -> None:
        self._tick(entry)

    def on_access(self, entry: CacheEntry) -> None:
        self._tick(entry)

    def _key(self, entry: CacheEntry) -> int:
        return self._stamp.get(entry.object_id, -1)


class FIFOPolicy(_SequencedPolicy):
    """First in, first out: insertion order only, accesses ignored."""

    @property
    def name(self) -> str:
        return "fifo"

    def on_store(self, entry: CacheEntry) -> None:
        # Replacing an entry re-inserts it; a refresh of the same object
        # keeps its original queue position only if never removed —
        # classic FIFO restamps on insert.
        self._tick(entry)

    def on_access(self, entry: CacheEntry) -> None:
        pass

    def _key(self, entry: CacheEntry) -> int:
        return self._stamp.get(entry.object_id, -1)


class LFUPolicy(ReplacementPolicy):
    """Least frequently used, ties broken by least-recent access."""

    def __init__(self) -> None:
        self._counts: dict[str, int] = {}
        self._ticks = itertools.count()
        self._last: dict[str, int] = {}

    @property
    def name(self) -> str:
        return "lfu"

    def on_store(self, entry: CacheEntry) -> None:
        self._counts.setdefault(entry.object_id, 0)
        self._last[entry.object_id] = next(self._ticks)

    def on_access(self, entry: CacheEntry) -> None:
        self._counts[entry.object_id] = (
            self._counts.get(entry.object_id, 0) + 1
        )
        self._last[entry.object_id] = next(self._ticks)

    def on_evict(self, entry: CacheEntry) -> None:
        self._counts.pop(entry.object_id, None)
        self._last.pop(entry.object_id, None)

    def choose_victim(
        self, resident: dict[str, CacheEntry], protect: Optional[str] = None
    ) -> str:
        candidates = [oid for oid in resident if oid != protect]
        if not candidates:
            raise LookupError("no evictable entries (all protected)")
        return min(
            candidates,
            key=lambda oid: (self._counts.get(oid, 0),
                             self._last.get(oid, -1)),
        )


class SizePolicy(ReplacementPolicy):
    """Largest entry first: maximize the number of resident objects."""

    @property
    def name(self) -> str:
        return "size"

    def on_store(self, entry: CacheEntry) -> None:
        pass

    def on_access(self, entry: CacheEntry) -> None:
        pass

    def on_evict(self, entry: CacheEntry) -> None:
        pass

    def choose_victim(
        self, resident: dict[str, CacheEntry], protect: Optional[str] = None
    ) -> str:
        candidates = [
            entry for oid, entry in resident.items() if oid != protect
        ]
        if not candidates:
            raise LookupError("no evictable entries (all protected)")
        # Ties broken by id for determinism.
        victim = max(candidates, key=lambda e: (e.size, e.object_id))
        return victim.object_id


#: Registry of the built-in policies by name.
POLICIES: dict[str, type[ReplacementPolicy]] = {
    "lru": LRUPolicy,
    "fifo": FIFOPolicy,
    "lfu": LFUPolicy,
    "size": SizePolicy,
}


def make_policy(name: str) -> ReplacementPolicy:
    """Instantiate a policy by name.

    Raises:
        ValueError: for an unknown policy name.
    """
    try:
        return POLICIES[name.lower()]()
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; choose from "
            f"{', '.join(POLICIES)}"
        ) from None
