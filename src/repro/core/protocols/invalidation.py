"""The server-driven invalidation protocol.

"Invalidation protocols depend on the server keeping track of cached
data; each time an item changes the server notifies caches that their
copies are no longer valid" (Section 1.0).  Freshness is simply the
entry's ``valid`` flag: True until a callback clears it.

Worrell's optimization is preserved by default: "upon receipt of an
invalidation message, objects were simply marked invalid, but not
immediately retrieved.  This increased latency on subsequent accesses,
but decreased bandwidth consumption if the object was not accessed
again."  Constructing the protocol with ``eager=True`` selects the
*pre-optimization* behaviour — the new copy is pushed immediately on
every change — which trades that bandwidth back for zero client-visible
latency.  The two variants bracket the latency/bandwidth trade the
paper describes; the ``ext-latency`` extension experiment measures it.

The callback delivery itself is the simulator's job (it interleaves the
origin's invalidation feed with the request stream in time order); this
class only declares the need for it via ``wants_invalidations``.

The paper also names the protocol's open weakness: it "is not resilient
in the face of network partition or server crashes" — a cache that
misses a callback serves the stale copy *forever*.
:class:`LeasedInvalidationProtocol` is the hardened variant: callbacks
still provide consistency on the fast path, but every copy additionally
carries a bounded lease measured from its last validation, so when
delivery fails (see :mod:`repro.faults`) staleness degrades gracefully
to Alex/TTL-style revalidation instead of being unbounded.
"""

from __future__ import annotations

from repro.core.cache import CacheEntry
from repro.core.protocols.base import ConsistencyProtocol


class InvalidationProtocol(ConsistencyProtocol):
    """Perfect consistency via server callbacks; zero stale hits.

    Args:
        eager: when True, every invalidation immediately refetches the
            new content (prefetch), so no client request ever waits on
            the origin; when False (Worrell's optimization, the paper's
            configuration), entries are merely marked invalid.
    """

    wants_invalidations = True

    def __init__(self, eager: bool = False) -> None:
        self.eager = bool(eager)

    @property
    def name(self) -> str:
        return "invalidation(eager)" if self.eager else "invalidation"

    def is_fresh(self, entry: CacheEntry, now: float) -> bool:
        """Fresh exactly while no invalidation callback has arrived."""
        return entry.valid

    def on_stored(self, entry: CacheEntry, now: float) -> None:
        """A (re)fetch re-establishes the callback promise."""
        entry.expires_at = None


class LeasedInvalidationProtocol(InvalidationProtocol):
    """Invalidation callbacks hardened with a bounded lease.

    Freshness requires *both* that no callback has arrived **and** that
    the copy was validated within the last ``lease`` seconds.  Under
    reliable delivery the lease only adds periodic If-Modified-Since
    traffic (mostly 304s); under faulty delivery it bounds the damage: a
    copy whose invalidation was lost is served stale for at most
    ``lease`` seconds before the cache revalidates it anyway.

    The bound is structural, not statistical.  An entry validated at
    ``v`` carries ``last_modified`` equal to the origin's at ``v``, so
    any modification it can be stale against happened after ``v``; the
    entry stops being served at ``v + lease``; therefore every stale
    serve is younger than ``lease``.  ``tests/faults/`` asserts this
    per-event, and the ``ext-faults`` experiment measures it.

    Args:
        lease: maximum seconds a copy may be served without
            revalidation.
        eager: as for :class:`InvalidationProtocol`.

    Raises:
        ValueError: for a non-positive lease.
    """

    def __init__(self, lease: float, eager: bool = False) -> None:
        super().__init__(eager)
        if lease <= 0.0:
            raise ValueError(f"lease must be positive: {lease}")
        self.lease = float(lease)

    @property
    def name(self) -> str:
        hours_text = f"{self.lease / 3600.0:g}h"
        suffix = ", eager" if self.eager else ""
        return f"leased-invalidation({hours_text}{suffix})"

    def is_fresh(self, entry: CacheEntry, now: float) -> bool:
        """Fresh while un-invalidated *and* inside the lease window."""
        return entry.valid and now - entry.validated_at < self.lease
