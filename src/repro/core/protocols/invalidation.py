"""The server-driven invalidation protocol.

"Invalidation protocols depend on the server keeping track of cached
data; each time an item changes the server notifies caches that their
copies are no longer valid" (Section 1.0).  Freshness is simply the
entry's ``valid`` flag: True until a callback clears it.

Worrell's optimization is preserved by default: "upon receipt of an
invalidation message, objects were simply marked invalid, but not
immediately retrieved.  This increased latency on subsequent accesses,
but decreased bandwidth consumption if the object was not accessed
again."  Constructing the protocol with ``eager=True`` selects the
*pre-optimization* behaviour — the new copy is pushed immediately on
every change — which trades that bandwidth back for zero client-visible
latency.  The two variants bracket the latency/bandwidth trade the
paper describes; the ``ext-latency`` extension experiment measures it.

The callback delivery itself is the simulator's job (it interleaves the
origin's invalidation feed with the request stream in time order); this
class only declares the need for it via ``wants_invalidations``.
"""

from __future__ import annotations

from repro.core.cache import CacheEntry
from repro.core.protocols.base import ConsistencyProtocol


class InvalidationProtocol(ConsistencyProtocol):
    """Perfect consistency via server callbacks; zero stale hits.

    Args:
        eager: when True, every invalidation immediately refetches the
            new content (prefetch), so no client request ever waits on
            the origin; when False (Worrell's optimization, the paper's
            configuration), entries are merely marked invalid.
    """

    wants_invalidations = True

    def __init__(self, eager: bool = False) -> None:
        self.eager = bool(eager)

    @property
    def name(self) -> str:
        return "invalidation(eager)" if self.eager else "invalidation"

    def is_fresh(self, entry: CacheEntry, now: float) -> bool:
        """Fresh exactly while no invalidation callback has arrived."""
        return entry.valid

    def on_stored(self, entry: CacheEntry, now: float) -> None:
        """A (re)fetch re-establishes the callback promise."""
        entry.expires_at = None
