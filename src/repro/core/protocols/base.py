"""The consistency-protocol interface.

A consistency protocol answers one question — *may this cache entry be
served without contacting the origin?* — and declares whether it needs
the origin's invalidation callbacks.  Everything else (what happens on a
miss, whether expiry triggers an unconditional refetch or an
If-Modified-Since query) is the *simulator mode's* business, not the
protocol's: the paper runs the same three protocols through the base and
optimized simulators, so the split lives there.
"""

from __future__ import annotations

import abc

from repro.core.cache import CacheEntry


class ConsistencyProtocol(abc.ABC):
    """Decides cache-entry freshness for one cache.

    Protocol objects may keep adaptive state (see
    :class:`~repro.core.protocols.adaptive.SelfTuningProtocol`), so a
    fresh instance should be used per simulation run.
    """

    #: True when the protocol relies on server callbacks (invalidation
    #: protocol); the simulator then registers the cache for the origin's
    #: invalidation feed.
    wants_invalidations: bool = False

    #: True when freshness decisions for one object depend on state
    #: shared *across* objects (the self-tuning per-file-type
    #: thresholds).  Lock granularity follows state scope: the live
    #: proxy serves such protocols under one global lock and the live
    #: driver dispatches their requests in global trace order, because
    #: per-object interleaving would change which threshold each
    #: decision sees.  Per-entry protocols leave this False and get
    #: genuine per-object concurrency.
    cross_object_state: bool = False

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Short human-readable label, e.g. ``alex(10%)``."""

    @abc.abstractmethod
    def is_fresh(self, entry: CacheEntry, now: float) -> bool:
        """Return True when ``entry`` may be served at ``now`` without
        consulting the origin."""

    def on_stored(self, entry: CacheEntry, now: float) -> None:
        """Hook invoked after the entry is fetched or revalidated.

        TTL-family protocols stamp ``entry.expires_at`` here; adaptive
        protocols update their statistics.  The default does nothing.
        """

    def on_validation_result(
        self, entry: CacheEntry, now: float, was_modified: bool
    ) -> None:
        """Hook invoked after an If-Modified-Since exchange completes.

        ``was_modified`` is True when the origin returned a new body.
        Only adaptive protocols care.  The default does nothing.
        """

    def state_snapshot(self) -> dict[str, object]:
        """Serializable instance state beyond what cache entries carry.

        The live proxy's crash journal (:mod:`repro.live.journal`)
        persists this with every committed transaction so a restarted
        proxy resumes with identical protocol behaviour.  Stateless and
        per-entry protocols have nothing to save; adaptive protocols
        override both this and :meth:`state_restore`.
        """
        return {}

    def state_restore(self, state: dict[str, object]) -> None:
        """Restore state produced by :meth:`state_snapshot`."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"
