"""The cache-consistency protocols the paper compares (plus baselines).

* :class:`TTLProtocol` / :class:`ExpiresTTLProtocol` — time-to-live.
* :class:`AlexProtocol` — the Alex FTP cache's adaptive threshold.
* :class:`InvalidationProtocol` — server callbacks, perfect consistency.
* :class:`LeasedInvalidationProtocol` — callbacks plus a bounded lease,
  so staleness stays bounded when delivery is faulty (docs/FAULTS.md).
* :class:`PollEveryRequestProtocol` — the degenerate threshold-0 case.
* :class:`CERNPolicyProtocol` — the CERN httpd policy (related work).
* :class:`SelfTuningProtocol` — the paper's future-work self-tuner.
"""

from repro.core.protocols.adaptive import SelfTuningProtocol
from repro.core.protocols.alex import AlexProtocol
from repro.core.protocols.base import ConsistencyProtocol
from repro.core.protocols.cern import CERNPolicyProtocol
from repro.core.protocols.invalidation import (
    InvalidationProtocol,
    LeasedInvalidationProtocol,
)
from repro.core.protocols.polling import PollEveryRequestProtocol
from repro.core.protocols.ttl import ExpiresTTLProtocol, TTLProtocol

__all__ = [
    "AlexProtocol",
    "CERNPolicyProtocol",
    "ConsistencyProtocol",
    "ExpiresTTLProtocol",
    "InvalidationProtocol",
    "LeasedInvalidationProtocol",
    "PollEveryRequestProtocol",
    "SelfTuningProtocol",
    "TTLProtocol",
]
