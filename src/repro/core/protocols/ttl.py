"""The time-to-live (TTL) protocol.

"Each object is assigned a time to live (TTL), such as two days or twelve
hours.  When the TTL elapses, the data is considered invalid" (Section
1.0).  The TTL window restarts whenever the entry is fetched or
revalidated — the behaviour of the CERN httpd and of the optimized
simulator's If-Modified-Since loop.

Two variants live here:

* :class:`TTLProtocol` — one fixed TTL for every object (the protocol the
  paper sweeps from 0 to 500 hours in Figures 2-8).
* :class:`ExpiresTTLProtocol` — honours a server-supplied ``Expires``
  header when present, falling back to the fixed TTL: the pure
  "expires header field" mechanism of the HTTP standard, "most useful for
  information with a known lifetime, such as online newspapers".
"""

from __future__ import annotations

from repro.core.cache import CacheEntry
from repro.core.clock import to_hours
from repro.core.protocols.base import ConsistencyProtocol
from repro.obs import registry as obs_metrics


class TTLProtocol(ConsistencyProtocol):
    """Fixed time-to-live consistency.

    Args:
        ttl: the time-to-live in simulation seconds.  A TTL of zero means
            every request revalidates (nothing is ever fresh).

    Raises:
        ValueError: if ``ttl`` is negative.
    """

    def __init__(self, ttl: float) -> None:
        if ttl < 0:
            raise ValueError(f"ttl must be non-negative, got {ttl}")
        self.ttl = float(ttl)

    @property
    def name(self) -> str:
        return f"ttl({to_hours(self.ttl):g}h)"

    def is_fresh(self, entry: CacheEntry, now: float) -> bool:
        """Fresh while less than ``ttl`` has passed since validation."""
        return (now - entry.validated_at) < self.ttl

    def on_stored(self, entry: CacheEntry, now: float) -> None:
        """Stamp the absolute expiry for introspection/tracing."""
        entry.expires_at = now + self.ttl
        obs_metrics.observe("protocol.refresh_window_seconds", self.ttl)


class ExpiresTTLProtocol(TTLProtocol):
    """TTL driven by the server's ``Expires`` header when present.

    When the origin attached an Expires timestamp to the last retrieval,
    freshness runs until that instant; otherwise the fixed default TTL
    applies.
    """

    def __init__(self, default_ttl: float) -> None:
        super().__init__(default_ttl)

    @property
    def name(self) -> str:
        return f"expires(default={to_hours(self.ttl):g}h)"

    def is_fresh(self, entry: CacheEntry, now: float) -> bool:
        """Fresh until the server Expires time, else per the default TTL."""
        if entry.server_expires is not None:
            return now < entry.server_expires
        return super().is_fresh(entry, now)

    def on_stored(self, entry: CacheEntry, now: float) -> None:
        """Stamp the governing expiry (server header or default)."""
        if entry.server_expires is not None:
            entry.expires_at = entry.server_expires
        else:
            entry.expires_at = now + self.ttl
        obs_metrics.observe(
            "protocol.refresh_window_seconds", entry.expires_at - now
        )
