"""Name-based protocol construction, shared by every entry point.

The CLI, the live drivers, and the standalone out-of-process proxy
(:mod:`repro.live.standalone`) all need to build a protocol from a
``(name, parameter)`` pair — the standalone proxy receives them as
command-line arguments, so the mapping cannot live in :mod:`repro.cli`
without an import cycle.  One registry here keeps the three in exact
agreement: a protocol name accepted anywhere is accepted everywhere.
"""

from __future__ import annotations

from repro.core.clock import hours
from repro.core.protocols.adaptive import SelfTuningProtocol
from repro.core.protocols.alex import AlexProtocol
from repro.core.protocols.base import ConsistencyProtocol
from repro.core.protocols.cern import CERNPolicyProtocol
from repro.core.protocols.invalidation import (
    InvalidationProtocol,
    LeasedInvalidationProtocol,
)
from repro.core.protocols.polling import PollEveryRequestProtocol
from repro.core.protocols.ttl import TTLProtocol

#: Protocol names accepted by :func:`build_protocol`, in display order.
PROTOCOLS = (
    "alex", "ttl", "invalidation", "leased", "poll", "cern", "selftuning",
)


def build_protocol(name: str, parameter: float) -> ConsistencyProtocol:
    """Construct a protocol from its CLI name and parameter.

    The parameter means: Alex — update threshold in percent; TTL — hours;
    leased — the lease term in hours; CERN — the Last-Modified fraction;
    self-tuning — the initial threshold in percent.  Invalidation and
    poll ignore it.

    Raises:
        ValueError: for an unknown protocol name.
    """
    key = name.lower()
    if key == "alex":
        return AlexProtocol.from_percent(parameter)
    if key == "ttl":
        return TTLProtocol(hours(parameter))
    if key == "invalidation":
        return InvalidationProtocol()
    if key == "leased":
        return LeasedInvalidationProtocol(hours(parameter))
    if key == "poll":
        return PollEveryRequestProtocol()
    if key == "cern":
        return CERNPolicyProtocol(lm_fraction=parameter / 100.0)
    if key == "selftuning":
        return SelfTuningProtocol(initial_threshold=parameter / 100.0)
    raise ValueError(
        f"unknown protocol {name!r}; choose from {', '.join(PROTOCOLS)}"
    )


__all__ = ["PROTOCOLS", "build_protocol"]
