"""The Alex adaptive-threshold (client polling) protocol.

From Section 1.0: the protocol "uses an update threshold to determine how
frequently to poll the server.  The update threshold is expressed as a
percentage of the object's age.  An object is invalidated when the time
since last validation exceeds the update threshold times the object's
age."

The worked example from the paper (and our doctest):

>>> from repro.core.cache import CacheEntry
>>> from repro.core.clock import days
>>> entry = CacheEntry(
...     "/f", version=0, size=100, file_type="html",
...     fetched_at=0.0, validated_at=days(29),
...     last_modified=days(-1))           # age 30 days at validation
>>> alex = AlexProtocol.from_percent(10)  # threshold 10% -> 3 days
>>> alex.is_fresh(entry, days(29) + days(2.9))   # within 3 days: fresh
True
>>> alex.is_fresh(entry, days(29) + days(3.1))   # past 3 days: invalid
False
"""

from __future__ import annotations

from repro.core.cache import CacheEntry
from repro.core.protocols.base import ConsistencyProtocol
from repro.obs import registry as obs_metrics


class AlexProtocol(ConsistencyProtocol):
    """Adaptive TTL: validity is a fixed fraction of the object's age.

    Args:
        threshold: the update threshold as a *fraction* (0.10 for the
            paper's "10%").  Zero means the cache checks with the server
            on every request — the Figure 8 pathological case.

    Raises:
        ValueError: if ``threshold`` is negative.
    """

    def __init__(self, threshold: float) -> None:
        if threshold < 0:
            raise ValueError(f"threshold must be non-negative, got {threshold}")
        self.threshold = float(threshold)

    @classmethod
    def from_percent(cls, percent: float) -> "AlexProtocol":
        """Build from the paper's percentage parameterization."""
        return cls(percent / 100.0)

    @property
    def percent(self) -> float:
        """The threshold as a percentage (the figures' x axis)."""
        return self.threshold * 100.0

    @property
    def name(self) -> str:
        return f"alex({self.percent:g}%)"

    def is_fresh(self, entry: CacheEntry, now: float) -> bool:
        """Fresh while time-since-validation < threshold * age.

        The age is measured at the last validation
        (``validated_at - last_modified``); a freshly-modified object has
        age near zero and is re-checked almost immediately, while a
        year-old object earns a long quiet period — "clients need to poll
        less frequently for older objects".
        """
        age = entry.validated_at - entry.last_modified
        if age <= 0.0:
            return False
        return (now - entry.validated_at) < self.threshold * age

    def on_stored(self, entry: CacheEntry, now: float) -> None:
        """Stamp the absolute expiry implied by the current age."""
        age = entry.validated_at - entry.last_modified
        entry.expires_at = entry.validated_at + self.threshold * max(age, 0.0)
        obs_metrics.observe(
            "protocol.refresh_window_seconds", self.threshold * max(age, 0.0)
        )
