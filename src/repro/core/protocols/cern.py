"""The CERN httpd expiration policy (related-work baseline).

Section 2.0: "The CERN server assigns cached objects times to live based
on (in order), the 'expires' header field, a configurable fraction of the
'Last-Modified' header field, and a configurable default expiration
time."

This is a TTL-family protocol whose per-object TTL is derived at store
time; the "fraction of Last-Modified" rule makes it an ancestor of the
Alex idea (validity proportional to age), which is why it is worth having
as a baseline next to the paper's three protocols.
"""

from __future__ import annotations

from typing import Optional

from repro.core.cache import CacheEntry
from repro.core.clock import to_hours
from repro.core.protocols.base import ConsistencyProtocol


class CERNPolicyProtocol(ConsistencyProtocol):
    """CERN httpd-style expiry: Expires header, else LM fraction, else default.

    Args:
        lm_fraction: the configurable fraction of the object's age
            (now − Last-Modified) used as the TTL when the server sent no
            Expires header.  CERN httpd shipped with 0.1 as the
            conventional setting.
        default_ttl: the TTL applied when there is no Expires header and
            no Last-Modified-derived age (age <= 0).
        max_ttl: optional clamp on the derived TTL (CERN's
            ``CacheLastModifiedFactor`` interacted with a max-expiry
            setting); ``None`` disables clamping.

    Raises:
        ValueError: on negative parameters.
    """

    def __init__(
        self,
        lm_fraction: float = 0.1,
        default_ttl: float = 0.0,
        max_ttl: Optional[float] = None,
    ) -> None:
        if lm_fraction < 0:
            raise ValueError(f"lm_fraction must be non-negative: {lm_fraction}")
        if default_ttl < 0:
            raise ValueError(f"default_ttl must be non-negative: {default_ttl}")
        if max_ttl is not None and max_ttl < 0:
            raise ValueError(f"max_ttl must be non-negative: {max_ttl}")
        self.lm_fraction = float(lm_fraction)
        self.default_ttl = float(default_ttl)
        self.max_ttl = max_ttl

    @property
    def name(self) -> str:
        return (
            f"cern(lm={self.lm_fraction:g}, "
            f"default={to_hours(self.default_ttl):g}h)"
        )

    def _derive_expiry(self, entry: CacheEntry, now: float) -> float:
        if entry.server_expires is not None:
            return entry.server_expires
        age = now - entry.last_modified
        if age > 0:
            ttl = self.lm_fraction * age
        else:
            ttl = self.default_ttl
        if self.max_ttl is not None:
            ttl = min(ttl, self.max_ttl)
        return now + ttl

    def is_fresh(self, entry: CacheEntry, now: float) -> bool:
        """Fresh until the expiry derived at store time."""
        if entry.expires_at is None:
            # Entry stored before this protocol took over (e.g. preload);
            # derive from its validation-time state.
            entry.expires_at = self._derive_expiry(entry, entry.validated_at)
        return now < entry.expires_at

    def on_stored(self, entry: CacheEntry, now: float) -> None:
        """Apply the three-rule policy to stamp the absolute expiry."""
        entry.expires_at = self._derive_expiry(entry, now)
