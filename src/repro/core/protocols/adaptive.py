"""Self-tuning consistency — the paper's Section 5 future work.

"We are investigating algorithms by which caches can be self-tuning, by
adjusting parameters based on the data type and the history of accesses
to items of that type."

:class:`SelfTuningProtocol` implements that investigation: it keeps an
Alex-style update threshold *per file type* and adapts it from validation
outcomes using multiplicative-increase / multiplicative-decrease:

* a validation answered **304 Not Modified** means the check was wasted —
  the threshold for that type grows by ``increase_factor`` (check less);
* a validation that found a **new body** means the entry went stale at
  some point — the threshold shrinks by ``decrease_factor`` (check more).

Thresholds are clamped to ``[min_threshold, max_threshold]``.  The
mechanism converges toward long windows for stable types (gif/jpg, per
Table 2's 85-100-day life-spans) and short windows for volatile ones,
without manual tuning — the failure mode the paper warns about
("Leaving this tuning to manual intervention is guaranteed to result in
suboptimal performance").
"""

from __future__ import annotations

from repro.core.cache import CacheEntry
from repro.core.protocols.base import ConsistencyProtocol


class SelfTuningProtocol(ConsistencyProtocol):
    """Per-file-type Alex thresholds adapted from validation history.

    Args:
        initial_threshold: starting threshold fraction for every type.
        min_threshold: lower clamp (never poll *more* often than this).
        max_threshold: upper clamp.
        increase_factor: multiplier applied after a wasted check (304).
        decrease_factor: multiplier applied after a detected change.

    Raises:
        ValueError: on non-positive factors or inverted clamps.
    """

    #: Thresholds are shared per file *type*, so one object's validation
    #: outcome changes another object's freshness decision — the live
    #: proxy must serialize requests globally for this protocol.
    cross_object_state = True

    def __init__(
        self,
        initial_threshold: float = 0.10,
        min_threshold: float = 0.01,
        max_threshold: float = 1.0,
        increase_factor: float = 1.2,
        decrease_factor: float = 0.5,
    ) -> None:
        if not 0 < min_threshold <= max_threshold:
            raise ValueError(
                f"need 0 < min_threshold <= max_threshold, got "
                f"[{min_threshold}, {max_threshold}]"
            )
        if not min_threshold <= initial_threshold <= max_threshold:
            raise ValueError(
                f"initial_threshold {initial_threshold} outside "
                f"[{min_threshold}, {max_threshold}]"
            )
        if increase_factor < 1.0:
            raise ValueError(f"increase_factor must be >= 1: {increase_factor}")
        if not 0 < decrease_factor <= 1.0:
            raise ValueError(
                f"decrease_factor must be in (0, 1]: {decrease_factor}"
            )
        self.initial_threshold = float(initial_threshold)
        self.min_threshold = float(min_threshold)
        self.max_threshold = float(max_threshold)
        self.increase_factor = float(increase_factor)
        self.decrease_factor = float(decrease_factor)
        self._thresholds: dict[str, float] = {}
        #: (wasted checks, detected changes) per type, for introspection.
        self.history: dict[str, list[int]] = {}

    @property
    def name(self) -> str:
        return f"self-tuning(init={self.initial_threshold * 100:g}%)"

    def threshold_for(self, file_type: str) -> float:
        """Current threshold fraction for ``file_type``."""
        return self._thresholds.get(file_type, self.initial_threshold)

    def is_fresh(self, entry: CacheEntry, now: float) -> bool:
        """Alex freshness rule under the entry's per-type threshold."""
        age = entry.validated_at - entry.last_modified
        if age <= 0.0:
            return False
        return (now - entry.validated_at) < self.threshold_for(entry.file_type) * age

    def on_validation_result(
        self, entry: CacheEntry, now: float, was_modified: bool
    ) -> None:
        """Adapt the type's threshold from the validation outcome."""
        current = self.threshold_for(entry.file_type)
        if was_modified:
            updated = max(current * self.decrease_factor, self.min_threshold)
        else:
            updated = min(current * self.increase_factor, self.max_threshold)
        self._thresholds[entry.file_type] = updated
        stats = self.history.setdefault(entry.file_type, [0, 0])
        stats[1 if was_modified else 0] += 1

    def snapshot(self) -> dict[str, float]:
        """The learned per-type thresholds (types seen so far)."""
        return dict(self._thresholds)

    def state_snapshot(self) -> dict[str, object]:
        """Thresholds + history, for the live proxy's crash journal."""
        return {
            "thresholds": dict(self._thresholds),
            "history": {k: list(v) for k, v in self.history.items()},
        }

    def state_restore(self, state: dict[str, object]) -> None:
        """Adopt a :meth:`state_snapshot` as the current learned state."""
        thresholds = state.get("thresholds", {})
        history = state.get("history", {})
        assert isinstance(thresholds, dict) and isinstance(history, dict)
        self._thresholds = {k: float(v) for k, v in thresholds.items()}
        self.history = {k: [int(n) for n in v] for k, v in history.items()}
