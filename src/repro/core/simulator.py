"""The single-cache trace-driven simulator.

This is the paper's measurement instrument: one proxy cache in front of
one origin server, driven by a time-ordered request stream, with the
origin's modification schedule running underneath.  Two modes reproduce
the paper's two simulator generations:

* :attr:`SimulatorMode.BASE` — Worrell's behaviour with the hierarchy
  flattened: when a time-based protocol's entry expires, "the next
  request for the object will cause the object to be requested from its
  original source" — an *unconditional* full retrieval, even if the
  content never changed (Figures 2-3).
* :attr:`SimulatorMode.OPTIMIZED` — the authors' conditional-retrieval
  optimization: expiry merely marks the entry; the next request issues an
  If-Modified-Since query and the body moves only when it truly changed.
  "Cache misses are recorded only when a file actually needs to be
  transferred to the cache" (Figures 4-8).

The invalidation protocol behaves identically in both modes because
Worrell had already applied the analogous optimization to it: callbacks
mark entries invalid without refetching.

Event interleaving: before serving a request at time *t*, every origin
modification with timestamp <= *t* is delivered to caches registered for
callbacks (the invalidation protocol).  Per Section 4.1 — "The
invalidation protocol sends an invalidation message every time that a
file changes" — a notice is charged for every modification of a resident
entry by default, whether or not the entry was already invalid.  That
charging policy is an explicit knob (``charge_per_modification``): pass
``False`` to charge only on valid→invalid transitions, the accounting a
server that tracks per-cache validity (like the hierarchy's
holder-registration scheme) would do.  Either way the entry state itself
is routed through :meth:`~repro.core.cache.Cache.invalidate`, so the
single-cache and hierarchy paths share one state transition.
"""

from __future__ import annotations

import enum
from typing import Callable, Iterable, Optional

from repro.core.cache import Cache, CacheEntry
from repro.core.costs import DEFAULT_COSTS, MessageCosts
from repro.obs import registry as obs_metrics
from repro.obs import trace as obs_trace
from repro.core.metrics import (
    FULL_RETRIEVAL,
    INVALIDATION,
    PREFETCH,
    VALIDATION_200,
    VALIDATION_304,
    BandwidthLedger,
    ConsistencyCounters,
)
from repro.core.protocols.base import ConsistencyProtocol
from repro.core.results import SimulationResult
from repro.core.server import FetchResult, NotModified, OriginServer
from repro.faults.plan import (
    ATTEMPT_LOST,
    ATTEMPT_SENT,
    CRASH,
    DROP,
    FaultAction,
    FaultPlan,
)

#: Every event kind an :data:`EventObserver` can receive.  The
#: ``repro.verify`` oracle replays exactly this alphabet event-for-event.
#: The ``fault_*`` kinds fire only when a :class:`repro.faults.FaultPlan`
#: is installed: an attempt lost in the network, a notice permanently
#: abandoned (retries exhausted or server down), a delivery that
#: succeeded on a retry, and a cache crash (empty object id).
EVENT_KINDS: tuple[str, ...] = (
    "hit",
    "stale_hit",
    "miss",
    "validation_304",
    "validation_200",
    "invalidation",
    "prefetch",
    "dynamic_fetch",
    "fault_invalidation_lost",
    "fault_invalidation_dropped",
    "fault_invalidation_recovered",
    "fault_cache_crash",
)

#: Callback signature for per-event tracing: ``observer(kind, time, id)``.
#: Kinds are the members of :data:`EVENT_KINDS`.
EventObserver = Callable[[str, float, str], None]


class SimulatorMode(enum.Enum):
    """Which generation of the paper's simulator to model."""

    #: Expired entries are refetched unconditionally (Figures 2-3).
    BASE = "base"
    #: Expired entries are revalidated with If-Modified-Since (Figures 4-8).
    OPTIMIZED = "optimized"


class Simulation:
    """One simulation run: a cache, a protocol, and a request stream.

    Args:
        server: the origin server (population + modification schedules).
        protocol: the consistency protocol governing the cache.
        mode: base or optimized simulator behaviour.
        costs: byte cost model (defaults to the paper's 43-byte messages).
        cache: an existing cache to drive; a fresh unbounded one when None.
        preload: when True (the paper's configuration), load a valid copy
            of every cacheable object before the run starts.
        start_time: simulation time at which the run begins; preloaded
            entries are stamped as validated at this instant.
        observer: optional per-event callback (see :data:`EventObserver`)
            for tracing and custom statistics; adds one comparison per
            event when unset.
        charge_per_modification: the Section 4.1 charging policy.  When
            True (the paper's reading — "The invalidation protocol sends
            an invalidation message every time that a file changes"), a
            notice is charged for every modification of a resident entry,
            even one already marked invalid.  When False, a notice is
            charged only when the callback actually flips a valid entry
            to invalid — the accounting of a server that tracks per-cache
            validity, which is what the hierarchy's holder registration
            does.  The entry state transition itself always goes through
            :meth:`Cache.invalidate`.
        faults: an optional :class:`repro.faults.FaultPlan`.  When set,
            invalidation delivery runs off the plan's compiled schedule
            (loss, delay, downtime, retries) instead of the perfect
            feed, and cache-crash actions apply to any protocol; when
            None (the default) behaviour is exactly the historical
            fault-free path.  A null plan (all rates zero) replays
            byte-identically to ``faults=None``.
    """

    def __init__(
        self,
        server: OriginServer,
        protocol: ConsistencyProtocol,
        mode: SimulatorMode = SimulatorMode.OPTIMIZED,
        *,
        costs: MessageCosts = DEFAULT_COSTS,
        cache: Optional[Cache] = None,
        preload: bool = True,
        start_time: float = 0.0,
        observer: Optional["EventObserver"] = None,
        charge_per_modification: bool = True,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        self.server = server
        self.protocol = protocol
        self.mode = mode
        self.costs = costs
        self.cache = cache if cache is not None else Cache()
        self.counters = ConsistencyCounters()
        self.bandwidth = BandwidthLedger()
        # With tracing/metrics off the tee returns ``observer`` unchanged
        # (None included): the historical zero-instrumentation path.
        self._observe = obs_trace.instrumented_observer(observer)
        self.charge_per_modification = bool(charge_per_modification)
        self.start_time = float(start_time)
        self._now = float(start_time)
        self.faults = faults
        self._feed: tuple[tuple[float, str], ...] = ()
        self._feed_idx = 0
        self._fault_actions: tuple[FaultAction, ...] = ()
        self._fault_idx = 0
        if faults is not None:
            # The injection seam: delivery (and crashes) run off the
            # compiled schedule; the fault-free loop below is bypassed.
            feed = (
                server.invalidation_feed()
                if protocol.wants_invalidations
                else ()
            )
            self._fault_actions = faults.compile(
                feed, start_time=self.start_time
            )
        elif protocol.wants_invalidations:
            self._feed = server.invalidation_feed()
            # Skip modifications that predate the run; preloaded entries
            # already reflect them.
            while (
                self._feed_idx < len(self._feed)
                and self._feed[self._feed_idx][0] <= self.start_time
            ):
                self._feed_idx += 1
        if preload:
            loaded = self.cache.preload_from(server, at=self.start_time)
            for entry in self.cache:
                protocol.on_stored(entry, self.start_time)
            del loaded

    # -- internals -------------------------------------------------------------

    def _deliver_invalidations_until(self, t: float) -> None:
        feed = self._feed
        idx = self._feed_idx
        peek = self.cache.peek
        invalidate = self.cache.invalidate
        counters = self.counters
        charge = self.bandwidth.charge
        control, body = self.costs.invalidation_notice()
        eager = getattr(self.protocol, "eager", False)
        per_modification = self.charge_per_modification
        n = len(feed)
        while idx < n and feed[idx][0] <= t:
            mod_time, oid = feed[idx]
            idx += 1
            if peek(oid) is None:
                continue
            went_invalid = invalidate(oid)
            if went_invalid or per_modification:
                counters.invalidations_received += 1
                counters.server_invalidations_sent += 1
                charge(INVALIDATION, control, body)
                if self._observe is not None:
                    self._observe("invalidation", mod_time, oid)
            if eager:
                # Pre-optimization invalidation: the new copy is
                # pushed with the notice, off any client's critical
                # path.  Not a cache miss — no request is waiting.
                result = self.server.get(oid, mod_time)
                p_control, p_body = self.costs.full_retrieval(result.size)
                charge(PREFETCH, p_control, p_body)
                counters.prefetches += 1
                counters.server_gets += 1
                obj = self.server.object(oid)
                self._store(oid, obj.file_type, result, mod_time)
                if self._observe is not None:
                    self._observe("prefetch", mod_time, oid)
        self._feed_idx = idx

    def _process_fault_actions(self, t: float) -> None:
        """Replay compiled fault actions with timestamps <= ``t``.

        This is the fault-plan counterpart of
        :meth:`_deliver_invalidations_until`; with a null plan the two
        produce byte-identical counters, charges, and events.  Charging
        follows the real message flow: every attempt that actually
        leaves the server (including ones the network then loses) costs
        one notice on the wire and counts toward
        ``server_invalidations_sent``; only deliveries that arrive count
        toward ``invalidations_received``.
        """
        actions = self._fault_actions
        idx = self._fault_idx
        peek = self.cache.peek
        counters = self.counters
        charge = self.bandwidth.charge
        control, body = self.costs.invalidation_notice()
        eager = getattr(self.protocol, "eager", False)
        per_modification = self.charge_per_modification
        n = len(actions)
        while idx < n and actions[idx].time <= t:
            action = actions[idx]
            idx += 1
            if action.kind == CRASH:
                self.cache.clear()
                if self._observe is not None:
                    self._observe("fault_cache_crash", action.time, "")
                continue
            entry = peek(action.object_id)
            if entry is None:
                continue
            if action.kind == ATTEMPT_SENT or action.kind == ATTEMPT_LOST:
                # The server sends (and is charged for) a notice when the
                # entry is still valid from its point of view — or on
                # every modification under the §4.1 per-modification
                # policy.  Lost attempts cost the same bytes; they just
                # never arrive.
                if entry.valid or per_modification:
                    counters.server_invalidations_sent += 1
                    charge(INVALIDATION, control, body)
                    if action.kind == ATTEMPT_LOST and self._observe is not None:
                        self._observe(
                            "fault_invalidation_lost",
                            action.time,
                            action.object_id,
                        )
            elif action.kind == DROP:
                # Permanently abandoned (retries exhausted or server
                # down) while the cache still believes the copy valid:
                # this is the moment unbounded staleness begins.
                if entry.valid and self._observe is not None:
                    self._observe(
                        "fault_invalidation_dropped",
                        action.time,
                        action.object_id,
                    )
            else:  # DELIVER
                went_invalid = self.cache.invalidate(
                    action.object_id, modified_at=action.mod_time
                )
                if went_invalid or per_modification:
                    counters.invalidations_received += 1
                    if self._observe is not None:
                        if action.attempt > 0:
                            self._observe(
                                "fault_invalidation_recovered",
                                action.time,
                                action.object_id,
                            )
                        self._observe(
                            "invalidation", action.time, action.object_id
                        )
                if eager:
                    result = self.server.get(action.object_id, action.time)
                    p_control, p_body = self.costs.full_retrieval(result.size)
                    charge(PREFETCH, p_control, p_body)
                    counters.prefetches += 1
                    counters.server_gets += 1
                    obj = self.server.object(action.object_id)
                    self._store(
                        action.object_id, obj.file_type, result, action.time
                    )
                    if self._observe is not None:
                        self._observe(
                            "prefetch", action.time, action.object_id
                        )
        self._fault_idx = idx

    def _full_fetch(self, object_id: str, t: float) -> FetchResult:
        result = self.server.get(object_id, t)
        control, body = self.costs.full_retrieval(result.size)
        self.bandwidth.charge(FULL_RETRIEVAL, control, body)
        self.counters.full_retrievals += 1
        self.counters.server_gets += 1
        self.counters.misses += 1
        obs_metrics.observe("sim.transfer_bytes", float(result.size))
        return result

    def _store(self, object_id: str, file_type: str, result: FetchResult,
               t: float) -> CacheEntry:
        entry = CacheEntry(
            object_id=object_id,
            version=result.version,
            size=result.size,
            file_type=file_type,
            fetched_at=t,
            validated_at=t,
            last_modified=result.last_modified,
            valid=True,
            server_expires=result.expires,
        )
        self.cache.store(entry)
        self.protocol.on_stored(entry, t)
        return entry

    # -- public API --------------------------------------------------------------

    def step(self, t: float, object_id: str) -> None:
        """Serve one client request for ``object_id`` at time ``t``.

        Requests must be presented in non-decreasing time order.

        Raises:
            ValueError: when ``t`` precedes the previous request.
        """
        if t < self._now:
            raise ValueError(
                f"request at {t!r} precedes current time {self._now!r}; "
                "request streams must be time-ordered"
            )
        self._now = t
        if self._fault_actions:
            self._process_fault_actions(t)
        elif self._feed:
            self._deliver_invalidations_until(t)
        self.counters.requests += 1

        obj = self.server.object(object_id)
        if not obj.cacheable:
            # Dynamic content: always regenerated at the origin.
            self._full_fetch(object_id, t)
            if self._observe is not None:
                self._observe("dynamic_fetch", t, object_id)
            return

        entry = self.cache.lookup(object_id)
        if entry is None:
            result = self._full_fetch(object_id, t)
            self._store(object_id, obj.file_type, result, t)
            if self._observe is not None:
                self._observe("miss", t, object_id)
            return

        if self.protocol.is_fresh(entry, t):
            self.counters.hits += 1
            schedule = self.server.schedule(object_id)
            if entry.version < schedule.version_at(t):
                self.counters.stale_hits += 1
                # How long has this entry been stale?  It went stale at
                # the first modification after the Last-Modified it holds.
                became_stale = schedule.next_change_after(entry.last_modified)
                if became_stale is not None:
                    self.counters.stale_age_sum += t - became_stale
                    obs_metrics.observe(
                        "sim.stale_age_seconds", t - became_stale
                    )
                if self._observe is not None:
                    self._observe("stale_hit", t, object_id)
            elif self._observe is not None:
                self._observe("hit", t, object_id)
            return

        if self.mode is SimulatorMode.BASE:
            # Unconditional refetch, even when nothing changed.
            result = self._full_fetch(object_id, t)
            self._store(object_id, obj.file_type, result, t)
            if self._observe is not None:
                self._observe("miss", t, object_id)
            return

        # Optimized mode: conditional retrieval.
        self.counters.validations += 1
        self.counters.server_ims_queries += 1
        result = self.server.if_modified_since(object_id, t, entry.last_modified)
        if isinstance(result, NotModified):
            control, body = self.costs.validation_not_modified()
            self.bandwidth.charge(VALIDATION_304, control, body)
            self.counters.validations_not_modified += 1
            entry.validated_at = t
            entry.valid = True
            # The 304 re-stamps the Expires header: without this an
            # Expires-driven entry would revalidate on every request
            # forever once its first Expires lapsed.
            entry.server_expires = result.expires
            self.protocol.on_stored(entry, t)
            self.protocol.on_validation_result(entry, t, was_modified=False)
            # Served from cache, and the origin just confirmed it current.
            self.counters.hits += 1
            if self._observe is not None:
                self._observe("validation_304", t, object_id)
            return
        control, body = self.costs.validation_modified(result.size)
        self.bandwidth.charge(VALIDATION_200, control, body)
        self.counters.misses += 1
        obs_metrics.observe("sim.transfer_bytes", float(result.size))
        entry = self._store(object_id, obj.file_type, result, t)
        self.protocol.on_validation_result(entry, t, was_modified=True)
        if self._observe is not None:
            self._observe("validation_200", t, object_id)

    def finish(self, end_time: Optional[float] = None) -> SimulationResult:
        """Flush trailing invalidations and return the run's result.

        Args:
            end_time: when provided, invalidation callbacks for
                modifications up to this time are still delivered (and
                charged) even though no further requests arrive — the
                server keeps notifying caches whether or not clients are
                interested.
        """
        if end_time is not None:
            if end_time < self._now:
                raise ValueError(
                    f"end_time {end_time!r} precedes last request {self._now!r}"
                )
            self._now = end_time
            if self._fault_actions:
                self._process_fault_actions(end_time)
            elif self._feed:
                self._deliver_invalidations_until(end_time)
        result = SimulationResult(
            protocol_name=self.protocol.name,
            mode=self.mode.value,
            counters=self.counters,
            bandwidth=self.bandwidth,
            duration=self._now - self.start_time,
        )
        result.counters.check_invariants()
        return result

    def run(
        self,
        requests: Iterable[tuple[float, str]],
        end_time: Optional[float] = None,
    ) -> SimulationResult:
        """Drive the full request stream and return the result."""
        step = self.step
        for t, object_id in requests:
            step(t, object_id)
        return self.finish(end_time)


def simulate(
    server: OriginServer,
    protocol: ConsistencyProtocol,
    requests: Iterable[tuple[float, str]],
    mode: SimulatorMode = SimulatorMode.OPTIMIZED,
    *,
    costs: MessageCosts = DEFAULT_COSTS,
    cache: Optional[Cache] = None,
    preload: bool = True,
    start_time: float = 0.0,
    end_time: Optional[float] = None,
    charge_per_modification: bool = True,
    faults: Optional[FaultPlan] = None,
) -> SimulationResult:
    """Run one complete simulation and return its result.

    This is the one-call entry point used by the experiments:

    >>> from repro.core.protocols import AlexProtocol
    >>> from repro.core.objects import ObjectHistory, WebObject
    >>> from repro.core.server import OriginServer
    >>> server = OriginServer(
    ...     [ObjectHistory(WebObject("/a", size=1000, created=-100.0))])
    >>> result = simulate(
    ...     server, AlexProtocol.from_percent(10), [(1.0, "/a"), (2.0, "/a")])
    >>> result.counters.requests
    2
    """
    sim = Simulation(
        server,
        protocol,
        mode,
        costs=costs,
        cache=cache,
        preload=preload,
        start_time=start_time,
        charge_per_modification=charge_per_modification,
        faults=faults,
    )
    return sim.run(requests, end_time=end_time)
