"""The origin (primary) server model.

The Web differs from a distributed file system in that "each item on the
web has a single master site from which changes can be made" (Section
2.0).  The :class:`OriginServer` is that master site: it owns every
object's modification schedule and answers the three operations the
protocols need —

* a plain **GET** (full retrieval),
* a **conditional GET** carrying If-Modified-Since, and
* the **invalidation feed**: the time-ordered stream of modification
  events that the invalidation protocol turns into callback messages.

The server is a pure queryable model; all cost/operation accounting is
done by the simulator so the same server instance can back multiple
caches (the hierarchy experiments).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Optional, Sequence

from repro.core.objects import ModificationSchedule, ObjectHistory, WebObject
from repro.obs import registry as obs_metrics


@dataclass(frozen=True)
class FetchResult:
    """What a retrieval (or a validation that found a change) returns.

    Attributes:
        version: the origin's content version at fetch time.
        last_modified: the origin's Last-Modified timestamp at fetch time.
        size: body size in bytes.
        expires: absolute Expires timestamp the server attached, if any.
    """

    version: int
    last_modified: float
    size: int
    expires: Optional[float] = None


@dataclass(frozen=True)
class NotModified:
    """A 304 Not Modified reply.

    No body travels, but response metadata does: a server that stamps
    ``Expires`` headers re-stamps one on the 304, so an Expires-driven
    cache gets a *fresh* lifetime from every successful revalidation
    instead of re-validating forever against the first, long-lapsed
    Expires it ever saw.

    Attributes:
        expires: the refreshed absolute Expires timestamp, or ``None``
            when the object carries no a-priori lifetime.
    """

    expires: Optional[float] = None


class UnknownObjectError(KeyError):
    """Raised when a request names an object the server does not hold."""


class OriginServer:
    """An origin server holding a fixed population of objects.

    Args:
        histories: the object population with modification schedules.

    Raises:
        ValueError: on duplicate object ids.
    """

    def __init__(self, histories: Iterable[ObjectHistory]) -> None:
        self._histories: dict[str, ObjectHistory] = {}
        for history in histories:
            oid = history.object_id
            if oid in self._histories:
                raise ValueError(f"duplicate object id: {oid!r}")
            self._histories[oid] = history
        self._invalidation_feed: Optional[tuple[tuple[float, str], ...]] = None
        self._feed_times: Optional[tuple[float, ...]] = None

    # -- population introspection ------------------------------------------

    def __len__(self) -> int:
        return len(self._histories)

    def __contains__(self, object_id: object) -> bool:
        return object_id in self._histories

    @property
    def object_ids(self) -> Sequence[str]:
        """All object identifiers, in insertion order."""
        return list(self._histories)

    def histories(self) -> Mapping[str, ObjectHistory]:
        """The full id → history mapping (read-only view by convention)."""
        return self._histories

    def history(self, object_id: str) -> ObjectHistory:
        """Return the history for ``object_id``.

        Raises:
            UnknownObjectError: if the server does not hold the object.
        """
        try:
            return self._histories[object_id]
        except KeyError:
            raise UnknownObjectError(object_id) from None

    def object(self, object_id: str) -> WebObject:
        """Return the :class:`WebObject` for ``object_id``."""
        return self.history(object_id).obj

    def schedule(self, object_id: str) -> ModificationSchedule:
        """Return the modification schedule for ``object_id``."""
        return self.history(object_id).schedule

    def total_changes(self, start: float, end: float) -> int:
        """Total modifications across all objects with start < t <= end."""
        return sum(
            h.schedule.changes_in(start, end) for h in self._histories.values()
        )

    # -- the operations protocols exercise ----------------------------------

    def version_at(self, object_id: str, t: float) -> int:
        """Content version the origin holds for ``object_id`` at time ``t``."""
        return self.history(object_id).schedule.version_at(t)

    def get(self, object_id: str, t: float) -> FetchResult:
        """A plain GET: return the current version's metadata."""
        obs_metrics.emit("server.gets")
        history = self.history(object_id)
        obj = history.obj
        expires = None
        if obj.expires_after is not None:
            expires = t + obj.expires_after
        return FetchResult(
            version=history.schedule.version_at(t),
            last_modified=history.schedule.last_modified_at(t),
            size=obj.size,
            expires=expires,
        )

    def if_modified_since(
        self, object_id: str, t: float, since: float
    ) -> "FetchResult | NotModified":
        """A conditional GET.

        Implements the paper's combined query: "send this file if it has
        changed since a specific date".

        Returns:
            A :class:`NotModified` reply (carrying a refreshed Expires
            timestamp when the object declares a lifetime) when the
            object has not been modified after ``since``, otherwise the
            new version's :class:`FetchResult`.
        """
        obs_metrics.emit("server.ims_queries")
        history = self.history(object_id)
        if history.schedule.last_modified_at(t) <= since:
            obj = history.obj
            expires = None
            if obj.expires_after is not None:
                expires = t + obj.expires_after
            return NotModified(expires=expires)
        return self.get(object_id, t)

    # -- invalidation support ------------------------------------------------

    def invalidation_feed(self) -> tuple[tuple[float, str], ...]:
        """All modification events as a time-ordered ``(time, id)`` stream.

        This is what the invalidation protocol's callback machinery
        consumes: "each time an item changes the server notifies caches
        that their copies are no longer valid".  The feed is computed once
        and cached; servers are immutable after construction.
        """
        if self._invalidation_feed is None:
            events = [
                (t, oid)
                for oid, history in self._histories.items()
                for t in history.schedule.times
            ]
            events.sort()
            self._invalidation_feed = tuple(events)
            self._feed_times = tuple(t for t, _ in events)
        return self._invalidation_feed

    def feed_between(
        self, start: float, end: float
    ) -> Iterator[tuple[float, str]]:
        """Invalidation events with ``start < time <= end``, in order.

        The timestamp array is computed once alongside the feed itself,
        so each call is two bisections plus a slice — no per-call list
        rebuild however often the window is queried.

        >>> from repro.core.objects import (
        ...     ModificationSchedule, ObjectHistory, WebObject)
        >>> server = OriginServer([ObjectHistory(
        ...     WebObject("/a", size=10, created=-1.0),
        ...     ModificationSchedule(-1.0, [1.0, 2.0, 3.0]))])
        >>> list(server.feed_between(1.0, 3.0))  # (start, end] window
        [(2.0, '/a'), (3.0, '/a')]
        >>> list(server.feed_between(3.0, 9.0))
        []
        """
        feed = self.invalidation_feed()
        times = self._feed_times
        assert times is not None  # populated by invalidation_feed()
        lo = bisect_right(times, start)
        hi = bisect_right(times, end)
        return iter(feed[lo:hi])
