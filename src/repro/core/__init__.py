"""Core of the reproduction: protocols, cache, origin server, simulators.

The public surface mirrors the paper's apparatus:

* :func:`simulate` / :class:`Simulation` — the single-cache trace-driven
  simulator with :class:`SimulatorMode` selecting base (unconditional
  refetch) or optimized (If-Modified-Since) behaviour.
* The protocols package — TTL, Alex, invalidation, plus baselines.
* :class:`OriginServer`, :class:`Cache` — the two endpoints.
* :class:`HierarchySimulation` — the multi-level topology the paper
  flattened, for the Figure 1 verification.
"""

from repro.core.cache import Cache, CacheEntry
from repro.core.clock import DAY, HOUR, MINUTE, MONTH, SECOND, SimClock, days, hours
from repro.core.costs import DEFAULT_COSTS, PAPER_MESSAGE_BYTES, MessageCosts
from repro.core.hierarchy import (
    CacheNode,
    HierarchySimulation,
    drive_workload,
    two_level_tree,
)
from repro.core.metrics import BandwidthLedger, ConsistencyCounters
from repro.core.objects import ModificationSchedule, ObjectHistory, WebObject
from repro.core.results import SimulationResult, average_results, merge_results
from repro.core.server import FetchResult, OriginServer, UnknownObjectError
from repro.core.simulator import Simulation, SimulatorMode, simulate

__all__ = [
    "DAY",
    "DEFAULT_COSTS",
    "HOUR",
    "MINUTE",
    "MONTH",
    "PAPER_MESSAGE_BYTES",
    "SECOND",
    "BandwidthLedger",
    "Cache",
    "CacheEntry",
    "CacheNode",
    "ConsistencyCounters",
    "FetchResult",
    "HierarchySimulation",
    "MessageCosts",
    "ModificationSchedule",
    "ObjectHistory",
    "OriginServer",
    "SimClock",
    "Simulation",
    "SimulationResult",
    "SimulatorMode",
    "UnknownObjectError",
    "WebObject",
    "average_results",
    "days",
    "drive_workload",
    "hours",
    "merge_results",
    "simulate",
    "two_level_tree",
]
