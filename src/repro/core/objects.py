"""Web objects and their modification histories.

A :class:`WebObject` is one URL's worth of content on an origin server:
an identifier, a body size, a file type (gif/html/...), and a creation
(first-modification) time.  Its :class:`ModificationSchedule` is the full
list of times at which the object's content changes during (and before)
the simulated period.

Versions are integers: version 0 is the content as of the creation time,
and each modification increments the version.  Version arithmetic is done
with :func:`bisect.bisect_right` over the sorted modification times, which
makes "what version did the server hold at time t" an O(log n) query —
the only question the simulator ever asks about content.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Optional, Sequence


@dataclass(frozen=True)
class WebObject:
    """One cacheable object (URL) on an origin server.

    Attributes:
        object_id: unique identifier; by convention a URL path such as
            ``/courses/cs161/syllabus.html``.
        size: body size in bytes.  The paper treats sizes as fixed per
            object ("each file averages several thousand bytes").
        file_type: coarse content type used by the Table-2 analyses
            (``gif``, ``html``, ``jpg``, ``cgi``, ``other``).
        created: simulation time of the object's initial publication, i.e.
            the Last-Modified timestamp of version 0.  Usually negative:
            objects exist (and have age) before the trace window opens.
        cacheable: False for dynamically generated responses (cgi); the
            paper's Microsoft trace found 10% of requests were dynamic.
        expires_after: when set, the server attaches an ``Expires`` header
            ``expires_after`` seconds after each retrieval — the a-priori
            lifetime knob used by objects "with a known lifetime, such as
            online newspapers that change daily".  ``None`` (the default)
            means the server sends no Expires header.
    """

    object_id: str
    size: int
    file_type: str = "html"
    created: float = 0.0
    cacheable: bool = True
    expires_after: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.object_id:
            raise ValueError("object_id must be non-empty")
        if self.size < 0:
            raise ValueError(f"size must be non-negative, got {self.size}")


class ModificationSchedule:
    """The sorted sequence of times at which an object's content changes.

    The schedule answers the two questions the simulator asks:

    * :meth:`version_at` — which version the origin server holds at time t
      (0 before the first modification).
    * :meth:`last_modified_at` — the Last-Modified timestamp at time t
      (the creation time while at version 0).
    """

    __slots__ = ("_created", "_times")

    def __init__(self, created: float, times: Sequence[float] = ()) -> None:
        self._created = float(created)
        sorted_times = sorted(float(t) for t in times)
        for t in sorted_times:
            if t <= created:
                raise ValueError(
                    f"modification at {t!r} not after creation {created!r}"
                )
        self._times: tuple[float, ...] = tuple(sorted_times)

    @property
    def created(self) -> float:
        """Creation time (Last-Modified of version 0)."""
        return self._created

    @property
    def times(self) -> tuple[float, ...]:
        """All modification times, ascending."""
        return self._times

    @property
    def total_changes(self) -> int:
        """Total number of modifications in the schedule."""
        return len(self._times)

    def version_at(self, t: float) -> int:
        """Version held by the origin at time ``t``.

        A modification at exactly ``t`` is already visible at ``t``.
        """
        return bisect_right(self._times, t)

    def last_modified_at(self, t: float) -> float:
        """Last-Modified timestamp at time ``t``."""
        version = self.version_at(t)
        if version == 0:
            return self._created
        return self._times[version - 1]

    def changes_in(self, start: float, end: float) -> int:
        """Number of modifications with ``start < time <= end``."""
        if end < start:
            raise ValueError(f"empty interval: ({start!r}, {end!r}]")
        return bisect_right(self._times, end) - bisect_right(self._times, start)

    def next_change_after(self, t: float) -> Optional[float]:
        """The first modification time strictly after ``t``, or None."""
        idx = bisect_right(self._times, t)
        if idx < len(self._times):
            return self._times[idx]
        return None

    def age_at(self, t: float) -> float:
        """Time since last modification at ``t`` — the Alex protocol's
        notion of an object's age."""
        return t - self.last_modified_at(t)

    def __repr__(self) -> str:
        return (
            f"ModificationSchedule(created={self._created!r}, "
            f"changes={len(self._times)})"
        )


@dataclass(frozen=True)
class ObjectHistory:
    """A :class:`WebObject` paired with its modification schedule.

    This is the unit the workload generators produce and the origin server
    consumes.
    """

    obj: WebObject
    schedule: ModificationSchedule = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.schedule is None:
            object.__setattr__(
                self, "schedule", ModificationSchedule(self.obj.created)
            )
        elif self.schedule.created != self.obj.created:
            raise ValueError(
                "schedule creation time must match the object's created time: "
                f"{self.schedule.created!r} != {self.obj.created!r}"
            )

    @property
    def object_id(self) -> str:
        """The underlying object's identifier."""
        return self.obj.object_id
