"""Simulation result container and cross-trace aggregation.

Figure 6's caption — "These results depict the averages of the FAS, HCS,
and DAS traces" — requires averaging results across independent
simulation runs; :func:`average_results` implements exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.metrics import BandwidthLedger, ConsistencyCounters


@dataclass
class SimulationResult:
    """Everything one simulation run reports.

    Attributes:
        protocol_name: human-readable protocol label (e.g. ``alex(10%)``).
        mode: ``base`` or ``optimized`` simulator mode.
        counters: request/server event counts.
        bandwidth: byte accounting.
        duration: simulated time covered by the run, in seconds.
    """

    protocol_name: str
    mode: str
    counters: ConsistencyCounters = field(default_factory=ConsistencyCounters)
    bandwidth: BandwidthLedger = field(default_factory=BandwidthLedger)
    duration: float = 0.0

    @property
    def total_megabytes(self) -> float:
        """Total consistency bandwidth in MB."""
        return self.bandwidth.total_megabytes

    @property
    def miss_rate(self) -> float:
        """Cache miss rate over the run."""
        return self.counters.miss_rate

    @property
    def hit_rate(self) -> float:
        """Cache hit rate over the run."""
        return self.counters.hit_rate

    @property
    def stale_hit_rate(self) -> float:
        """Stale hit rate over the run."""
        return self.counters.stale_hit_rate

    @property
    def server_operations(self) -> int:
        """Total server operations over the run (Figure 8's metric)."""
        return self.counters.server_operations

    @property
    def mean_round_trips(self) -> float:
        """Average synchronous server round trips per request (latency)."""
        return self.counters.mean_round_trips

    def summary(self) -> dict[str, float]:
        """A flat dict of the headline metrics, for reports and tests."""
        return {
            "total_mb": self.total_megabytes,
            "miss_rate": self.miss_rate,
            "stale_hit_rate": self.stale_hit_rate,
            "server_operations": float(self.server_operations),
            "requests": float(self.counters.requests),
            "mean_round_trips": self.mean_round_trips,
        }


def result_to_dict(result: SimulationResult) -> dict:
    """Serialize a result to a JSON-compatible dict.

    Everything a stored run needs to be compared later: protocol, mode,
    duration, full counters, and the per-category byte ledger.
    """
    counters = result.counters
    return {
        "protocol_name": result.protocol_name,
        "mode": result.mode,
        "duration": result.duration,
        "counters": {
            field_name: getattr(counters, field_name)
            for field_name in (
                "requests", "hits", "misses", "stale_hits", "stale_age_sum",
                "validations", "validations_not_modified", "full_retrievals",
                "invalidations_received", "prefetches", "server_gets",
                "server_ims_queries", "server_invalidations_sent",
            )
        },
        "bandwidth": {
            "control_bytes": dict(result.bandwidth.control_bytes),
            "body_bytes": dict(result.bandwidth.body_bytes),
            "exchanges": dict(result.bandwidth.exchanges),
        },
    }


def result_from_dict(data: dict) -> SimulationResult:
    """Rebuild a result serialized by :func:`result_to_dict`.

    Raises:
        KeyError: when required fields are missing.
        ValueError: when the ledger contains unknown categories.
    """
    result = SimulationResult(
        protocol_name=data["protocol_name"],
        mode=data["mode"],
        duration=float(data["duration"]),
    )
    for field_name, value in data["counters"].items():
        if not hasattr(result.counters, field_name):
            raise KeyError(f"unknown counter field: {field_name!r}")
        setattr(result.counters, field_name, value)
    ledger = result.bandwidth
    bw = data["bandwidth"]
    for table_name in ("control_bytes", "body_bytes", "exchanges"):
        table = getattr(ledger, table_name)
        for category, value in bw[table_name].items():
            if category not in table:
                raise ValueError(f"unknown ledger category: {category!r}")
            table[category] = value
    return result


def merge_results(results: Sequence[SimulationResult]) -> SimulationResult:
    """Sum counters and bandwidth across runs (e.g. the three campus traces).

    The merged result keeps the protocol name and mode of the first run;
    all runs must share them.

    Raises:
        ValueError: on an empty sequence or mismatched protocols/modes.
    """
    if not results:
        raise ValueError("cannot merge zero results")
    first = results[0]
    for r in results[1:]:
        if r.protocol_name != first.protocol_name or r.mode != first.mode:
            raise ValueError(
                "cannot merge results from different protocols/modes: "
                f"{r.protocol_name}/{r.mode} vs {first.protocol_name}/{first.mode}"
            )
    merged = SimulationResult(first.protocol_name, first.mode)
    for r in results:
        merged.counters.merge(r.counters)
        merged.bandwidth.merge(r.bandwidth)
        merged.duration = max(merged.duration, r.duration)
    return merged


def average_results(results: Sequence[SimulationResult]) -> dict[str, float]:
    """Average the headline metrics across runs, as Figure 6 does.

    Bandwidth is averaged in MB; rates are averaged as rates (each trace
    weighted equally, matching "the averages of the FAS, HCS, and DAS
    traces").
    """
    if not results:
        raise ValueError("cannot average zero results")
    n = len(results)
    keys = results[0].summary().keys()
    return {
        key: sum(r.summary()[key] for r in results) / n for key in keys
    }
