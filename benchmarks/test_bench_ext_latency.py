"""Extension bench: eager vs lazy invalidation (the latency trade).

Times the eager-invalidation run over the campus traces and asserts the
ext-latency experiment's checks.
"""

from benchmarks.conftest import assert_checks
from repro.analysis.sweep import run_protocol
from repro.core.protocols import InvalidationProtocol
from repro.core.simulator import SimulatorMode


def test_ext_latency_eager_push(benchmark, reports, campus):
    def run():
        return run_protocol(
            campus, lambda: InvalidationProtocol(eager=True),
            SimulatorMode.OPTIMIZED,
        )

    metrics = benchmark(run)
    assert metrics["mean_round_trips"] == 0.0
    assert_checks(reports("ext-latency"))
