"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation times the variant configuration and asserts the directional
effect that justifies the design choice:

* conditional retrieval (the optimized simulator) is a pure win;
* preloading only changes the cold-start transient;
* the popularity↔mutability anti-correlation is what keeps stale rates
  low — turn it off and staleness rises;
* the 43-byte message assumption is not load-bearing — file bodies
  dominate, so a 10x message-size error does not flip the verdict.
"""

import pytest

from benchmarks.conftest import BENCH_SCALE
from repro.core.costs import MessageCosts
from repro.core.protocols import AlexProtocol, InvalidationProtocol
from repro.core.simulator import SimulatorMode, simulate
from repro.workload.campus import HCS, CampusWorkload


@pytest.fixture(scope="module")
def hcs_default():
    return CampusWorkload(HCS, seed=31, request_scale=BENCH_SCALE).build()


@pytest.fixture(scope="module")
def hcs_uncorrelated():
    """Correlation off: any file, including the most popular, may change."""
    return CampusWorkload(
        HCS, seed=31, request_scale=BENCH_SCALE,
        mutability_bias=0.0, top_exclude=0.0, bottom_exclude=0.0,
    ).build()


def _alex(workload, mode=SimulatorMode.OPTIMIZED, percent=50, **kwargs):
    return simulate(
        workload.server(), AlexProtocol.from_percent(percent),
        workload.requests, mode, end_time=workload.duration, **kwargs,
    )


def test_ablation_conditional_retrieval(benchmark, hcs_default):
    """Base mode vs optimized mode at the same threshold."""
    base = _alex(hcs_default, SimulatorMode.BASE)
    opt = benchmark(_alex, hcs_default, SimulatorMode.OPTIMIZED)
    assert opt.bandwidth.total_bytes < base.bandwidth.total_bytes
    assert opt.counters.misses <= base.counters.misses
    assert opt.stale_hit_rate == pytest.approx(base.stale_hit_rate)


def test_ablation_preload(benchmark, hcs_default):
    """A cold cache pays one compulsory miss per distinct object, no more."""
    warm = _alex(hcs_default)
    cold = benchmark(_alex, hcs_default, preload=False)
    distinct = len({oid for _, oid in hcs_default.requests})
    extra_misses = cold.counters.misses - warm.counters.misses
    assert 0 < extra_misses <= distinct


def test_ablation_popularity_mutability_correlation(
    benchmark, hcs_default, hcs_uncorrelated
):
    """Bestavros' anti-correlation is what keeps weak consistency cheap:
    without it, popular files change and stale hits multiply."""
    correlated = _alex(hcs_default)
    uncorrelated = benchmark(_alex, hcs_uncorrelated)
    assert uncorrelated.stale_hit_rate > correlated.stale_hit_rate


def test_ablation_popularity_skew(benchmark, hcs_default):
    """Worrell "used a uniform distribution to generate file requests";
    the paper argues real streams are skewed.  Flatten the popularity
    (zipf s=0) and the tuned-Alex staleness roughly doubles: the Zipf
    head of stable popular files is part of why weak consistency is
    safe."""
    uniform = CampusWorkload(
        HCS, seed=31, request_scale=BENCH_SCALE, zipf_s=0.0
    ).build()

    flat = benchmark(_alex, uniform, percent=100)
    skewed = _alex(hcs_default, percent=100)
    assert flat.stale_hit_rate > skewed.stale_hit_rate


def test_ablation_bounded_cache(benchmark, hcs_default):
    """The paper assumes an unbounded cache.  Bound it to a fraction of
    the population's bytes and capacity misses appear — quantifying how
    much of the 'near perfect miss rates' depends on that assumption."""
    from repro.core.cache import Cache

    population_bytes = sum(h.obj.size for h in hcs_default.histories)

    def run():
        cache = Cache(capacity_bytes=max(1, population_bytes // 10))
        return _alex(hcs_default, cache=cache, preload=False), cache

    bounded, cache = benchmark(run)
    unbounded = _alex(hcs_default, preload=False)
    assert cache.evictions > 0
    assert bounded.counters.misses > unbounded.counters.misses


def test_ablation_cern_policy_baseline(benchmark, hcs_default):
    """The related-work CERN httpd policy (Expires -> LM-fraction ->
    default) behaves like a fraction-of-age Alex: same regime, and its
    LM-fraction rule is the ancestor of the adaptive idea."""
    from repro.core.protocols import CERNPolicyProtocol

    def run():
        return simulate(
            hcs_default.server(), CERNPolicyProtocol(lm_fraction=0.1),
            hcs_default.requests, SimulatorMode.OPTIMIZED,
            end_time=hcs_default.duration,
        )

    cern = benchmark(run)
    alex = _alex(hcs_default, percent=10)
    assert cern.stale_hit_rate < 0.05
    # Same decade of bandwidth as the equivalent Alex threshold.
    assert 0.2 < (cern.bandwidth.total_bytes
                  / max(alex.bandwidth.total_bytes, 1)) < 5.0


def test_ablation_message_size_sensitivity(benchmark, hcs_default):
    """Inflate control messages 10x: the Alex-beats-invalidation verdict
    must not flip, because bodies dominate the byte counts."""
    big = MessageCosts(control_message=430)

    def run():
        alex = _alex(hcs_default, costs=big)
        inval = simulate(
            hcs_default.server(), InvalidationProtocol(),
            hcs_default.requests, SimulatorMode.OPTIMIZED,
            end_time=hcs_default.duration, costs=big,
        )
        return alex, inval

    alex, inval = benchmark(run)
    assert alex.bandwidth.total_bytes < inval.bandwidth.total_bytes
