"""Hierarchy bench: the Figure 1 flattening argument at workload scale.

Times a full campus workload driven through a two-level cache tree and
asserts that collapsing the hierarchy does not flatter the time-based
protocols — the premise underlying every single-cache figure.
"""

from benchmarks.conftest import BENCH_SCALE
from repro.core.clock import hours
from repro.core.hierarchy import drive_workload
from repro.core.protocols import InvalidationProtocol, TTLProtocol
from repro.core.simulator import SimulatorMode, simulate
from repro.workload.campus import HCS, CampusWorkload


def test_hierarchy_workload_scale(benchmark):
    workload = CampusWorkload(
        HCS, seed=41, request_scale=BENCH_SCALE * 0.5
    ).build()
    server = workload.server()

    def run_hierarchical():
        time_sim = drive_workload(
            server, lambda: TTLProtocol(hours(125)), workload.requests,
            clients=workload.clients, end_time=workload.duration,
        )
        inval_sim = drive_workload(
            server, InvalidationProtocol, workload.requests,
            clients=workload.clients, deliver_invalidations=True,
            end_time=workload.duration,
        )
        return time_sim.total_bytes(), inval_sim.total_bytes()

    hier_time, hier_inval = benchmark(run_hierarchical)

    flat_time = simulate(
        server, TTLProtocol(hours(125)), workload.requests,
        SimulatorMode.OPTIMIZED, end_time=workload.duration,
    ).bandwidth.total_bytes
    flat_inval = simulate(
        server, InvalidationProtocol(), workload.requests,
        SimulatorMode.OPTIMIZED, end_time=workload.duration,
    ).bandwidth.total_bytes

    assert flat_time / flat_inval >= hier_time / hier_inval * 0.999
