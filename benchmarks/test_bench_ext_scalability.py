"""Extension bench: origin load vs cache population.

Times the 8-cache partitioned invalidation run and asserts the
ext-scalability experiment's checks (linear callback bookkeeping).
"""

from benchmarks.conftest import BENCH_SCALE, assert_checks
from repro.core.protocols import InvalidationProtocol
from repro.experiments.ext_scalability import _partitioned_run
from repro.workload.campus import HCS, CampusWorkload


def test_ext_scalability_partitioned_invalidation(benchmark, reports):
    workload = CampusWorkload(
        HCS, seed=21, request_scale=BENCH_SCALE
    ).build()

    def run():
        return _partitioned_run(workload, InvalidationProtocol, 8)

    merged = benchmark(run)
    # One notice per change per cache: exactly 8x the single-cache count.
    changes = workload.total_changes
    assert merged.counters.server_invalidations_sent == 8 * changes
    assert merged.counters.stale_hits == 0
    assert_checks(reports("ext-scalability"))
