"""Shared benchmark fixtures.

Every table/figure benchmark does two things:

1. **times** the core computation behind the experiment (a representative
   simulation run or statistic), via pytest-benchmark;
2. **asserts** the experiment's shape checks — the paper's qualitative
   claims — on a report computed once per session at ``BENCH_SCALE``.

Run with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import pytest

from repro.experiments import common
from repro.experiments.registry import run_experiment

#: Workload scale for benchmark-time experiment verification.  0.5 keeps
#: the full ten-experiment sweep under a minute while staying inside the
#: regime where every shape check is meaningful.
BENCH_SCALE = 0.5
BENCH_SEED = 0


@pytest.fixture(scope="session")
def reports():
    """All experiment reports at bench scale, computed once."""
    common.clear_caches()
    cache: dict[str, object] = {}

    def get(experiment_id: str):
        if experiment_id not in cache:
            cache[experiment_id] = run_experiment(
                experiment_id, scale=BENCH_SCALE, seed=BENCH_SEED
            )
        return cache[experiment_id]

    return get


def assert_checks(report) -> None:
    """Fail the benchmark if any of the paper's shape checks regressed."""
    failed = report.failed_checks()
    assert not failed, "\n".join(c.render() for c in failed)


@pytest.fixture(scope="session")
def campus():
    """The three campus workloads at bench scale (memoized)."""
    return list(common.campus_workloads(BENCH_SCALE, BENCH_SEED))


@pytest.fixture(scope="session")
def worrell():
    """The Worrell workload at bench scale (memoized)."""
    return common.worrell_workload(BENCH_SCALE, BENCH_SEED)
