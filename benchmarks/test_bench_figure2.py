"""Figure 2 bench: base-simulator bandwidth (Worrell workload).

Times a representative base-mode run (Alex at the paper's 40% example
threshold) and asserts Figure 2's shape checks.
"""

from benchmarks.conftest import assert_checks
from repro.core.protocols import AlexProtocol
from repro.core.simulator import SimulatorMode, simulate


def test_figure2_base_mode_run(benchmark, reports, worrell):
    server = worrell.server()

    def run():
        return simulate(
            server, AlexProtocol.from_percent(40), worrell.requests,
            SimulatorMode.BASE, end_time=worrell.duration,
        )

    result = benchmark(run)
    assert result.counters.requests == len(worrell.requests)
    assert_checks(reports("figure2"))
