"""Table 1 bench: campus trace synthesis plus mutability statistics.

Times the full DAS generation + ground-truth statistics computation and
asserts every Table 1 row check.
"""

from benchmarks.conftest import BENCH_SCALE, assert_checks
from repro.trace.stats import mutability_from_histories
from repro.workload.campus import DAS, CampusWorkload


def test_table1_das_generation_and_stats(benchmark, reports):
    def run():
        workload = CampusWorkload(
            DAS, seed=17, request_scale=BENCH_SCALE
        ).build()
        return mutability_from_histories(
            workload.histories, workload.duration, name="DAS"
        )

    stats = benchmark(run)
    assert stats.files == DAS.files
    assert abs(stats.pct_mutable - DAS.pct_mutable) <= 0.5
    assert_checks(reports("table1"))
