"""Figure 1 bench: the hierarchy-flattening scenarios.

Times one full hierarchical-vs-collapsed scenario sweep and asserts the
caption's bias claims.
"""

from benchmarks.conftest import assert_checks
from repro.experiments.figure1 import SCENARIOS, _measure


def test_figure1_scenarios(benchmark, reports):
    def run_all():
        return {s.key: _measure(s) for s in SCENARIOS}

    measured = benchmark(run_all)
    assert set(measured) == {s.key for s in SCENARIOS}
    assert_checks(reports("figure1"))
