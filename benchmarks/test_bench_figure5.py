"""Figure 5 bench: optimized-simulator miss rates.

Times the invalidation-protocol run (the baseline every panel compares
against) and asserts Figure 5's checks: misses collapse to the
invalidation level, stale rates unchanged from the base simulator.
"""

from benchmarks.conftest import assert_checks
from repro.core.protocols import InvalidationProtocol
from repro.core.simulator import SimulatorMode, simulate


def test_figure5_invalidation_run(benchmark, reports, worrell):
    server = worrell.server()

    def run():
        return simulate(
            server, InvalidationProtocol(), worrell.requests,
            SimulatorMode.OPTIMIZED, end_time=worrell.duration,
        )

    result = benchmark(run)
    assert result.counters.stale_hits == 0
    assert_checks(reports("figure5"))
