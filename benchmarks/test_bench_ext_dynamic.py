"""Extension bench: the dynamic-content trend (paper Section 5).

Times one dynamic-heavy workload build + simulation and asserts the
ext-dynamic experiment's checks.
"""

from benchmarks.conftest import BENCH_SCALE, assert_checks
from repro.core.protocols import AlexProtocol
from repro.core.simulator import SimulatorMode, simulate
from repro.workload.campus import HCS, CampusWorkload


def test_ext_dynamic_ten_percent(benchmark, reports):
    def run():
        workload = CampusWorkload(
            HCS, seed=19, request_scale=BENCH_SCALE, dynamic_fraction=0.10
        ).build()
        return simulate(
            workload.server(), AlexProtocol.from_percent(10),
            workload.requests, SimulatorMode.OPTIMIZED,
            end_time=workload.duration,
        )

    result = benchmark(run)
    assert result.counters.full_retrievals > 0
    assert_checks(reports("ext-dynamic"))
