"""Microbenchmarks: raw simulator throughput and workload generation.

These are regression guards on the instrument itself — the figure
sweeps run ~40 full simulations each, so requests/second here bounds the
wall-clock of everything else.
"""

from benchmarks.conftest import BENCH_SCALE
from repro.core.protocols import (
    AlexProtocol,
    InvalidationProtocol,
    TTLProtocol,
)
from repro.core.clock import hours
from repro.core.simulator import SimulatorMode, simulate
from repro.workload.campus import FAS, CampusWorkload
from repro.workload.worrell import WorrellWorkload


def test_throughput_alex(benchmark, worrell):
    server = worrell.server()
    result = benchmark(
        simulate, server, AlexProtocol.from_percent(20), worrell.requests,
        SimulatorMode.OPTIMIZED, end_time=worrell.duration,
    )
    assert result.counters.requests == len(worrell.requests)


def test_throughput_ttl(benchmark, worrell):
    server = worrell.server()
    result = benchmark(
        simulate, server, TTLProtocol(hours(125)), worrell.requests,
        SimulatorMode.OPTIMIZED, end_time=worrell.duration,
    )
    assert result.counters.requests == len(worrell.requests)


def test_throughput_invalidation(benchmark, worrell):
    server = worrell.server()
    result = benchmark(
        simulate, server, InvalidationProtocol(), worrell.requests,
        SimulatorMode.OPTIMIZED, end_time=worrell.duration,
    )
    assert result.counters.stale_hits == 0


def test_workload_generation_worrell(benchmark):
    workload = benchmark(
        lambda: WorrellWorkload(files=500, requests=20_000, seed=5).build()
    )
    assert workload.file_count == 500


def test_workload_generation_campus(benchmark):
    workload = benchmark(
        lambda: CampusWorkload(FAS, seed=5,
                               request_scale=BENCH_SCALE).build()
    )
    assert workload.file_count == FAS.files
