"""Table 2 bench: the BU daily-sampling pipeline.

Times population build + 186 daily samples + life-span estimation and
asserts the Table 2 checks (access mix, sizes, life-span ordering).
"""

from benchmarks.conftest import assert_checks
from repro.trace.sampler import DailySampler
from repro.workload.boston import BU_WINDOW, BostonPopulation


def test_table2_bu_sampling_pipeline(benchmark, reports):
    def run():
        histories = BostonPopulation(files=800, seed=23).build()
        sampler = DailySampler(histories, BU_WINDOW)
        return sampler.estimate_lifespans(sampler.run())

    estimates = benchmark(run)
    assert "gif" in estimates and "jpg" in estimates
    assert_checks(reports("table2"))
