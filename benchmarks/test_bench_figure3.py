"""Figure 3 bench: base-simulator miss/stale rates.

Times the TTL run at the paper's 125-hour working example and asserts
Figure 3's shape checks (stale grows with the parameter, invalidation
stays perfect).
"""

from benchmarks.conftest import assert_checks
from repro.core.clock import hours
from repro.core.protocols import TTLProtocol
from repro.core.simulator import SimulatorMode, simulate


def test_figure3_ttl_125h_run(benchmark, reports, worrell):
    server = worrell.server()

    def run():
        return simulate(
            server, TTLProtocol(hours(125)), worrell.requests,
            SimulatorMode.BASE, end_time=worrell.duration,
        )

    result = benchmark(run)
    # The paper's example regime: substantial staleness at TTL 125h.
    assert result.stale_hit_rate > 0.05
    assert_checks(reports("figure3"))
