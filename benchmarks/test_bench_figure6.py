"""Figure 6 bench: trace-driven bandwidth across the campus workloads.

Times the three-trace Alex run at the order-of-magnitude operating point
(high threshold) and asserts Figure 6's checks.
"""

from benchmarks.conftest import assert_checks
from repro.analysis.sweep import run_protocol
from repro.core.protocols import AlexProtocol
from repro.core.simulator import SimulatorMode


def test_figure6_three_trace_average(benchmark, reports, campus):
    def run():
        return run_protocol(
            campus, lambda: AlexProtocol.from_percent(100),
            SimulatorMode.OPTIMIZED,
        )

    metrics = benchmark(run)
    assert metrics["total_mb"] > 0
    assert_checks(reports("figure6"))
