"""Replacement-policy bench: who loses least when capacity bites.

The paper's unbounded cache is the best case; this bench bounds the
cache to 15% of the population's bytes, drives the HCS workload through
every replacement policy, and checks the classic Web-caching ordering:
recency/frequency-aware policies (LRU/LFU) keep more hits than FIFO, and
all of them miss more than the unbounded cache.
"""

import pytest

from benchmarks.conftest import BENCH_SCALE
from repro.core.cache import Cache
from repro.core.protocols import AlexProtocol
from repro.core.replacement import POLICIES, make_policy
from repro.core.simulator import SimulatorMode, simulate
from repro.workload.campus import HCS, CampusWorkload


@pytest.fixture(scope="module")
def workload():
    return CampusWorkload(HCS, seed=47, request_scale=BENCH_SCALE).build()


def run_with(workload, cache):
    return simulate(
        workload.server(), AlexProtocol.from_percent(20),
        workload.requests, SimulatorMode.OPTIMIZED,
        cache=cache, preload=False, end_time=workload.duration,
    )


def test_replacement_policies_under_pressure(benchmark, workload):
    capacity = max(
        1, sum(h.obj.size for h in workload.histories) * 15 // 100
    )

    def run_all():
        return {
            name: run_with(
                workload, Cache(capacity_bytes=capacity,
                                policy=make_policy(name))
            )
            for name in sorted(POLICIES)
        }

    results = benchmark(run_all)
    unbounded = run_with(workload, Cache())

    for name, result in results.items():
        assert result.counters.misses > unbounded.counters.misses, name
    # Recency beats pure insertion order on a Zipf-skewed stream.
    assert results["lru"].counters.misses <= results["fifo"].counters.misses
    # All policies still serve the stream correctly.
    for result in results.values():
        result.counters.check_invariants()
