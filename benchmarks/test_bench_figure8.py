"""Figure 8 bench: server load.

Times the pathological poll-every-request configuration (Alex threshold
0) that the paper singles out, and asserts Figure 8's checks, including
the crossover threshold where Alex's load drops below invalidation's.
"""

from benchmarks.conftest import assert_checks
from repro.analysis.sweep import run_protocol
from repro.core.protocols import PollEveryRequestProtocol
from repro.core.simulator import SimulatorMode


def test_figure8_poll_every_request(benchmark, reports, campus):
    def run():
        return run_protocol(
            campus, PollEveryRequestProtocol, SimulatorMode.OPTIMIZED,
        )

    metrics = benchmark(run)
    total_requests = sum(len(w.requests) for w in campus) / len(campus)
    assert metrics["server_operations"] >= total_requests
    assert_checks(reports("figure8"))
