"""Figure 4 bench: optimized-simulator bandwidth.

Times the same Alex configuration as the Figure 2 bench but with
conditional retrieval, so the two benchmark numbers juxtapose the cost
of unconditional refetching directly.
"""

from benchmarks.conftest import assert_checks
from repro.core.protocols import AlexProtocol
from repro.core.simulator import SimulatorMode, simulate


def test_figure4_optimized_mode_run(benchmark, reports, worrell):
    server = worrell.server()

    def run():
        return simulate(
            server, AlexProtocol.from_percent(40), worrell.requests,
            SimulatorMode.OPTIMIZED, end_time=worrell.duration,
        )

    result = benchmark(run)
    assert result.counters.validations > 0
    assert_checks(reports("figure4"))
