"""Figure 7 bench: trace-driven miss/stale rates.

Times the Alex run at the paper's recommended 5% threshold (the "<1%
stale" configuration) and asserts Figure 7's checks.
"""

from benchmarks.conftest import assert_checks
from repro.analysis.sweep import run_protocol
from repro.core.protocols import AlexProtocol
from repro.core.simulator import SimulatorMode


def test_figure7_alex_5pct_threshold(benchmark, reports, campus):
    def run():
        return run_protocol(
            campus, lambda: AlexProtocol.from_percent(5),
            SimulatorMode.OPTIMIZED,
        )

    metrics = benchmark(run)
    assert metrics["stale_hit_rate"] < 0.01
    assert_checks(reports("figure7"))
