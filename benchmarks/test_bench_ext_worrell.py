"""Extension bench: Worrell's seven-day TTL break-even.

Times the base-mode run at Worrell's 168-hour TTL and asserts the
ext-worrell experiment's checks.
"""

from benchmarks.conftest import assert_checks
from repro.core.clock import hours
from repro.core.protocols import TTLProtocol
from repro.core.simulator import SimulatorMode, simulate


def test_ext_worrell_seven_day_ttl(benchmark, reports, worrell):
    server = worrell.server()

    def run():
        return simulate(
            server, TTLProtocol(hours(168)), worrell.requests,
            SimulatorMode.BASE, end_time=worrell.duration,
        )

    result = benchmark(run)
    # Worrell's price: substantial staleness at the break-even TTL.
    assert result.stale_hit_rate > 0.10
    assert_checks(reports("ext-worrell"))
